// dsprofd wire protocol (DESIGN.md §3.3): length-prefixed, versioned frames
// carrying columnar event batches from collector clients to the daemon.
//
// Frame layout (little-endian, 12-byte header):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic     0x44535257 ("DSRW" read as LE u32)
//        4     1  version   kWireVersion (currently 4: Hello carries a
//                           per-counter set id plus the multiplexing slice
//                           table, and EventBatch payloads always include
//                           the per-event set column; v3 adopted the aligned
//                           columnar EventBatch layout so the daemon folds
//                           straight out of the frame bytes; v2 grew an
//                           allocation-site PC on Alloc entries. Peers on
//                           another version are rejected. Unlike the on-disk
//                           formats, the wire has no byte-compat obligation —
//                           the invariant covers reports and snapshots, not
//                           socket bytes — so v4 frames carry the set column
//                           unconditionally, zero-filled when the client did
//                           not multiplex)
//        5     1  type      FrameType
//        6     2  flags     frame-type specific (SnapshotReq bit 0 =
//                           merged fleet view; 0 everywhere else)
//        8     4  len       payload length; <= kMaxPayload (64 MB)
//       12   len  payload   type-specific encoding (below)
//
// Payload encodings reuse the experiment layer's ByteWriter/ByteReader and,
// for event batches, the EventStore aligned columnar (DSPG-style) codec
// itself — the batch bytes on the wire are the same 8-byte-aligned columns
// events.bin stores on disk, so the corruption hardening applies to the
// socket too, and the receiver adopts the columns as zero-copy views into
// the frame payload (no per-event decode work). The decoders here convert
// any bytestream Error into Status{Malformed}: a hostile client can kill
// its session, never the daemon.
//
// Conversation (client side):
//   Hello -> HelloAck, then any number of EventBatch / Alloc frames,
//   Flush -> FlushAck (server has folded everything received),
//   SnapshotReq -> Snapshot (rendered JSON report, see reports.hpp),
//   StatsReq -> Stats, Close -> CloseAck. The server answers a protocol
//   violation with an Error frame and closes the session.
//
// A SnapshotReq with kSnapshotMergedFlag set asks for the *fleet* view:
// the server merges every retained session's live aggregates (server.hpp)
// and renders one multi-experiment report. Merged requests (and StatsReq /
// Close) need no preceding Hello — a monitoring client can connect, query
// and leave without streaming anything.
#pragma once

#include <deque>
#include <vector>

#include "experiment/experiment.hpp"
#include "serve/status.hpp"
#include "support/bytestream.hpp"

namespace dsprof::serve {

inline constexpr u32 kWireMagic = 0x44535257;  // "WRSD" on disk -> "DSRW" LE
inline constexpr u8 kWireVersion = 4;
inline constexpr size_t kFrameHeaderSize = 12;
inline constexpr size_t kMaxPayload = 64u << 20;  // 64 MB

enum class FrameType : u8 {
  Hello = 1,     // image identity + counter specs (handshake)
  HelloAck,      // session id
  EventBatch,    // columnar EventStore bytes
  Alloc,         // allocation log entries (address, size, site PC)
  Flush,         // barrier: fold everything received so far
  FlushAck,      // events_in / events_reduced / events_dropped at barrier
  SnapshotReq,   // render the live aggregates
  Snapshot,      // JSON report + accounting
  StatsReq,      // server-wide introspection
  Stats,         // JSON stats
  Close,         // finalize the session
  CloseAck,      //
  Error,         // status code + message (server -> client, then close)
};

const char* frame_type_name(FrameType t);

/// SnapshotReq flags bit 0: render the merged cross-session (fleet) view
/// instead of the requesting session's own aggregates.
inline constexpr u16 kSnapshotMergedFlag = 1;

struct Frame {
  FrameType type = FrameType::Error;
  u16 flags = 0;
  std::vector<u8> payload;
};

/// Encode one frame (header + payload) into a contiguous byte string.
std::vector<u8> encode_frame(FrameType type, const std::vector<u8>& payload, u16 flags = 0);

/// Incremental frame parser: feed() raw transport bytes in any chunking;
/// complete frames queue up for next_frame(). Corruption (bad magic, bad
/// version, oversized length) is detected from the header alone and
/// reported once — the stream is poisoned afterwards (a framing error
/// leaves no way to resynchronize).
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kMaxPayload) : max_payload_(max_payload) {}

  /// Consume `n` bytes; returns non-Ok on a framing error (stream poisoned).
  Status feed(const u8* data, size_t n);

  /// Pop the next complete frame, if any.
  bool next_frame(Frame& out);

  /// True if a frame header or payload is partially buffered — i.e. the
  /// peer disconnected mid-frame and the partial bytes must be discarded.
  bool mid_frame() const { return !buf_.empty(); }

  size_t frames_decoded() const { return frames_decoded_; }

 private:
  size_t max_payload_;
  std::vector<u8> buf_;     // partial frame bytes
  std::deque<Frame> ready_;
  bool poisoned_ = false;
  size_t frames_decoded_ = 0;
};

// --- payload codecs ---------------------------------------------------------
// Encoders return the payload bytes; decoders return Status and never throw
// (bytestream underruns are caught and mapped to Malformed).

/// Handshake: everything Analysis needs as rendering context besides the
/// events themselves — the image (symbol tables), counter specs (backtrack
/// flags select the attribution path), clock and machine geometry, and the
/// run totals when the client replays a finished collection.
struct HelloPayload {
  std::string client_name;
  sym::Image image;
  std::vector<experiment::CounterSpec> counters;
  u64 clock_interval = 0;
  u64 clock_hz = 900'000'000;
  u64 page_size = 8 * 1024;
  u64 ec_line_size = 512;
  u64 total_cycles = 0;
  u64 total_instructions = 0;
  /// Multiplexing slice table (set -> live cycles, switches); empty when the
  /// client did not multiplex. The server stores it on the session experiment
  /// so snapshot renders apply the same renormalization an offline analysis
  /// of the saved experiment would.
  std::vector<experiment::SliceInfo> slices;
};

std::vector<u8> encode_hello(const HelloPayload& h);
Status decode_hello(const std::vector<u8>& payload, HelloPayload& out);

std::vector<u8> encode_hello_ack(u64 session_id);
Status decode_hello_ack(const std::vector<u8>& payload, u64& session_id);

/// Event batches are the EventStore aligned columnar codec verbatim. The
/// range form is the client's batch slicer: it emits events [begin, end)
/// directly from the source store (serialize_range_aligned — handles
/// remapped with one probe per event) without materializing an intermediate
/// sub-store.
std::vector<u8> encode_event_batch(const experiment::EventStore& events);
std::vector<u8> encode_event_batch(const experiment::EventStore& events, size_t begin,
                                   size_t end);
/// Zero-copy decode: the payload is moved into the store as its backing
/// storage and the columns become views into it — no per-event work. The
/// result is frozen and mapped (fold/serialize fine, append an error),
/// which is all the daemon needs for fold-and-discard.
Status decode_event_batch(std::vector<u8>&& payload, experiment::EventStore& out);

std::vector<u8> encode_allocs(const std::vector<machine::AllocRecord>& allocs);
Status decode_allocs(const std::vector<u8>& payload, std::vector<machine::AllocRecord>& out);

/// FlushAck / Snapshot both carry the session accounting triple; Snapshot
/// adds the rendered JSON report.
struct Accounting {
  u64 events_in = 0;
  u64 events_reduced = 0;
  u64 events_dropped = 0;
};

std::vector<u8> encode_flush_ack(const Accounting& a);
Status decode_flush_ack(const std::vector<u8>& payload, Accounting& out);

std::vector<u8> encode_snapshot(const Accounting& a, const std::string& json_report);
Status decode_snapshot(const std::vector<u8>& payload, Accounting& a, std::string& json_report);

std::vector<u8> encode_stats(const std::string& json);
Status decode_stats(const std::vector<u8>& payload, std::string& json);

std::vector<u8> encode_error(const Status& s);
Status decode_error(const std::vector<u8>& payload, Status& out);

}  // namespace dsprof::serve
