#include "support/bytestream.hpp"

#include <cstdio>

namespace dsprof {

void write_file(const std::string& path, const std::vector<u8>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) fail("cannot open for write: " + path);
  const size_t n = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int rc = std::fclose(f);
  if (n != bytes.size() || rc != 0) fail("short write: " + path);
}

std::vector<u8> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fail("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<u8> bytes(sz > 0 ? static_cast<size_t>(sz) : 0);
  const size_t n = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) fail("short read: " + path);
  return bytes;
}

}  // namespace dsprof
