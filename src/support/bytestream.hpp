// Little binary serialization layer for experiment files and symbol tables.
// Varint-free, explicitly sized little-endian fields; every reader checks
// bounds so a truncated or corrupt experiment produces an Error, never UB.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof {

class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_bytes(&v, 2); }
  void put_u32(u32 v) { put_bytes(&v, 4); }
  void put_u64(u64 v) { put_bytes(&v, 8); }
  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }
  void put_f64(double v) { put_bytes(&v, 8); }

  void put_string(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_blob(const void* data, size_t n) {
    put_u64(n);
    const auto* p = static_cast<const u8*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Append `n` bytes with no length prefix (the aligned columnar layout
  /// derives lengths from element counts instead of embedded blob sizes).
  void put_raw(const void* data, size_t n) { put_bytes(data, n); }

  /// Pad with zero bytes until the write position is `align`-aligned
  /// relative to the start of the buffer (the aligned columnar on-disk
  /// layout wants every u64 column 8-byte aligned for zero-copy mapping).
  void align_to(size_t align) {
    while (buf_.size() % align != 0) buf_.push_back(0);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  void put_bytes(const void* p, size_t n) {
    const auto* b = static_cast<const u8*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<u8> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<u8>& buf) : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const u8* data, size_t size) : buf_(data), size_(size) {}

  u8 get_u8() { return get<u8>(); }
  u16 get_u16() { return get<u16>(); }
  u32 get_u32() { return get<u32>(); }
  u64 get_u64() { return get<u64>(); }
  i64 get_i64() { return static_cast<i64>(get_u64()); }
  double get_f64() { return get<double>(); }

  std::string get_string() {
    const u32 n = get_u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<u8> get_blob() {
    const u64 n = get_u64();
    need(n);
    std::vector<u8> v(buf_ + pos_, buf_ + pos_ + n);
    pos_ += n;
    return v;
  }

  bool at_end() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

  // --- zero-copy access (the mmap experiment loader) -----------------------
  /// Current read offset from the start of the buffer.
  size_t pos() const { return pos_; }
  /// Pointer to the next unread byte. Valid while the underlying buffer
  /// (e.g. a MappedFile) is alive; the caller checks lengths via skip().
  const u8* cursor() const { return buf_ + pos_; }
  /// Advance without copying; bounds-checked like every other read.
  void skip(u64 n) {
    need(n);
    pos_ += n;
  }
  /// Skip padding until the read offset is `align`-aligned relative to the
  /// start of the buffer (mirrors ByteWriter::align_to).
  void align_to(size_t align) {
    while (pos_ % align != 0) skip(1);
  }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  // Overflow-safe: `pos_ + n <= size_` would wrap for hostile blob lengths
  // near 2^64 and wave the read through.
  void need(u64 n) { DSP_CHECK(n <= size_ - pos_, "bytestream underrun"); }

  const u8* buf_;
  size_t size_;
  size_t pos_ = 0;
};

/// Write `bytes` to `path`, replacing it. Throws Error on I/O failure.
void write_file(const std::string& path, const std::vector<u8>& bytes);

/// Read all of `path`. Throws Error if unreadable.
std::vector<u8> read_file(const std::string& path);

}  // namespace dsprof
