// Common fixed-width aliases and error-checking helpers used across dsprof.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dsprof {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Error thrown for violated invariants anywhere in the simulator stack.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

/// Runtime invariant check that stays on in release builds: the simulator's
/// correctness guarantees (decode validity, address bounds, table lookups)
/// must never be compiled out.
#define DSP_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dsprof::fail(std::string("DSP_CHECK failed: ") + (msg) + " at " +  \
                     __FILE__ + ":" + std::to_string(__LINE__));           \
    }                                                                      \
  } while (0)

/// Sign-extend the low `bits` bits of `v` to 64 bits.
constexpr i64 sign_extend(u64 v, unsigned bits) {
  const u64 m = u64{1} << (bits - 1);
  return static_cast<i64>((v ^ m) - m);
}

/// True if `v` fits in a signed `bits`-bit field.
constexpr bool fits_signed(i64 v, unsigned bits) {
  const i64 lo = -(i64{1} << (bits - 1));
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True if `v` fits in an unsigned `bits`-bit field.
constexpr bool fits_unsigned(u64 v, unsigned bits) {
  return bits >= 64 || v < (u64{1} << bits);
}

constexpr u64 round_up(u64 v, u64 align) { return (v + align - 1) / align * align; }

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2_exact(u64 v) {
  unsigned n = 0;
  while ((u64{1} << n) < v) ++n;
  return n;
}

}  // namespace dsprof
