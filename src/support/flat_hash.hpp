// Open-addressing hash map from u64 keys to arbitrary values, used by the
// analyzer's sharded reduction engine (and anywhere else a hot aggregation
// loop would otherwise pay std::map's node allocations and pointer chasing).
//
// Design: entries live densely in a vector (stable iteration in insertion
// order, cache-friendly merge walks); a separate power-of-two slot table of
// u32 indices does the probing. Linear probing with a splitmix64-mixed hash;
// the table grows at ~2/3 load. No erase — the reduction only accumulates.
#pragma once

#include <vector>

#include "support/common.hpp"

namespace dsprof {

/// Mix a 64-bit key into a well-distributed hash (splitmix64 finalizer).
constexpr u64 mix_u64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename V>
class FlatHashU64Map {
 public:
  struct Entry {
    u64 key;
    V value;
  };

  FlatHashU64Map() = default;

  /// Pre-size for ~n entries without rehashing.
  void reserve(size_t n) {
    entries_.reserve(n);
    size_t cap = 16;
    while (cap * 2 < n * 3) cap <<= 1;
    if (cap > slots_.size()) rebuild(cap);
  }

  /// Find the value for `key`, inserting a default-constructed one if absent.
  V& operator[](u64 key) {
    if (slots_.empty()) rebuild(16);
    size_t i = mix_u64(key) & mask_;
    while (slots_[i] != 0) {
      Entry& e = entries_[slots_[i] - 1];
      if (e.key == key) return e.value;
      i = (i + 1) & mask_;
    }
    entries_.push_back(Entry{key, V{}});
    slots_[i] = static_cast<u32>(entries_.size());
    if (entries_.size() * 3 > slots_.size() * 2) rebuild(slots_.size() * 2);
    return entries_.back().value;
  }

  const V* find(u64 key) const {
    if (slots_.empty()) return nullptr;
    size_t i = mix_u64(key) & mask_;
    while (slots_[i] != 0) {
      const Entry& e = entries_[slots_[i] - 1];
      if (e.key == key) return &e.value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dense entries in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }

  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), 0);
  }

 private:
  void rebuild(size_t cap) {
    slots_.assign(cap, 0);
    mask_ = cap - 1;
    for (size_t n = 0; n < entries_.size(); ++n) {
      size_t i = mix_u64(entries_[n].key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<u32>(n + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<u32> slots_;  // entry index + 1; 0 = empty
  size_t mask_ = 0;
};

}  // namespace dsprof
