#include "support/mmap_file.hpp"

#include "support/bytestream.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DSPROF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dsprof {

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  auto mf = std::shared_ptr<MappedFile>(new MappedFile());
#ifdef DSPROF_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      const size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        mf->mapped_ = true;  // an empty mapping needs no pages
        return mf;
      }
      void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        mf->data_ = static_cast<const u8*>(p);
        mf->size_ = size;
        mf->mapped_ = true;
        return mf;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // Fallback: buffered read (read_file throws Error with the path on
  // failure, which is the contract callers rely on for missing files).
  mf->fallback_ = read_file(path);
  mf->data_ = mf->fallback_.data();
  mf->size_ = mf->fallback_.size();
  return mf;
}

MappedFile::~MappedFile() {
#ifdef DSPROF_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<u8*>(data_), size_);
  }
#endif
}

}  // namespace dsprof
