// Read-only memory-mapped files for the zero-copy experiment loader.
//
// A MappedFile owns one read-only mapping of a whole file. Consumers keep a
// shared_ptr to it and hand out raw pointers into the mapping (EventStore
// column views); the mapping outlives every view because the views' owner
// holds the shared_ptr. On platforms without mmap (or when the map fails)
// the same class falls back to reading the file into an owned heap buffer —
// callers see identical semantics either way, only `mapped()` differs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof {

class MappedFile {
 public:
  /// Map (or read) `path`. Throws Error if the file cannot be opened/read.
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const u8* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes come from a real mmap (page-cache backed), false
  /// when the fallback buffered read was used.
  bool mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const u8* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<u8> fallback_;  // owns the bytes when !mapped_
};

}  // namespace dsprof
