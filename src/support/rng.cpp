#include "support/rng.hpp"

namespace dsprof {

namespace {

bool is_prime(u64 n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  if (n % 3 == 0) return n == 3;
  for (u64 f = 5; f * f <= n; f += 6) {
    if (n % f == 0 || n % (f + 2) == 0) return false;
  }
  return true;
}

}  // namespace

u64 next_prime(u64 n) {
  if (n <= 2) return 2;
  u64 c = n | 1;  // first odd >= n
  while (!is_prime(c)) c += 2;
  return c;
}

}  // namespace dsprof
