// Deterministic PRNGs. All stochastic behaviour in the simulator (counter
// skid, workload generation) must be reproducible from a seed, so we use our
// own engines rather than std::mt19937 whose distributions are not portable.
#pragma once

#include "support/common.hpp"

namespace dsprof {

/// SplitMix64: used to seed and to derive independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** — the main workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  u64 below(u64 bound) {
    DSP_CHECK(bound != 0, "rng bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    DSP_CHECK(lo <= hi, "rng range inverted");
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

/// Smallest prime >= n. Counter overflow intervals are chosen prime to avoid
/// correlation with loop periods (paper §2.2).
u64 next_prime(u64 n);

}  // namespace dsprof
