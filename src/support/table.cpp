#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dsprof {

namespace {

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : aligns_(std::move(aligns)), ncols_(headers.size()) {
  if (aligns_.empty()) aligns_.assign(ncols_, Align::Right);
  DSP_CHECK(aligns_.size() == ncols_, "aligns/headers size mismatch");
  // Split multi-line headers into parallel header rows, bottom-aligned.
  std::vector<std::vector<std::string>> cols;
  size_t maxlines = 1;
  for (auto& h : headers) {
    cols.push_back(split_lines(h));
    maxlines = std::max(maxlines, cols.back().size());
  }
  header_lines_.assign(maxlines, std::vector<std::string>(ncols_));
  for (size_t c = 0; c < ncols_; ++c) {
    const size_t pad = maxlines - cols[c].size();
    for (size_t l = 0; l < cols[c].size(); ++l) header_lines_[pad + l][c] = cols[c][l];
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  DSP_CHECK(cells.size() == ncols_, "row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(int indent) const {
  std::vector<size_t> width(ncols_, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < ncols_; ++c) width[c] = std::max(width[c], row[c].size());
  };
  for (auto& h : header_lines_) widen(h);
  for (auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << std::string(indent, ' ');
    for (size_t c = 0; c < ncols_; ++c) {
      const std::string& cell = row[c];
      const size_t pad = width[c] - cell.size();
      // The last column is never right-padded (keeps names unclipped).
      if (aligns_[c] == Align::Right) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell;
        if (c + 1 < ncols_) os << std::string(pad, ' ');
      }
      if (c + 1 < ncols_) os << "  ";
    }
    os << '\n';
  };
  for (auto& h : header_lines_) emit(h);
  {
    size_t total = indent;
    for (size_t c = 0; c < ncols_; ++c) total += width[c] + (c + 1 < ncols_ ? 2 : 0);
    os << std::string(indent, ' ') << std::string(total - indent, '=') << '\n';
  }
  for (auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction) { return fmt_fixed(fraction * 100.0, 1); }

std::string fmt_count(u64 v) {
  std::string digits = std::to_string(v);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_hex(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llX", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace dsprof
