// Fixed-width text table renderer for analyzer reports — produces the
// er_print-style listings shown in the paper's Figures 1-7.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof {

/// Column alignment in a rendered table.
enum class Align { Left, Right };

/// A simple text table: set headers, append rows of strings, render with
/// per-column widths computed from content.
class TextTable {
 public:
  /// `headers` may contain embedded '\n' for two-line headers.
  explicit TextTable(std::vector<std::string> headers, std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Render with `indent` leading spaces on each line and two spaces between
  /// columns.
  std::string render(int indent = 0) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> header_lines_;  // [line][col]
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  size_t ncols_;
};

/// Format helpers used throughout the report code.
std::string fmt_fixed(double v, int decimals);
std::string fmt_percent(double fraction);     // 0.513 -> "51.3"
std::string fmt_count(u64 v);                 // grouped: 1580927631 -> "1,580,927,631"
std::string fmt_hex(u64 v);                   // 0x1000031b0 style

}  // namespace dsprof
