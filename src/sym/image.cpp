#include "sym/image.hpp"

namespace dsprof::sym {

void Image::load_into(mem::Memory& m) const {
  DSP_CHECK(!text_words.empty(), "image has no text");
  DSP_CHECK(entry >= text_base && entry < text_base + text_size(), "entry outside text");
  m.add_segment({"text", mem::SegKind::Text, text_base, text_size(),
                 /*writable=*/false, /*executable=*/true});
  const u64 dsize = std::max<u64>(data_size, data_init.size());
  if (dsize > 0) {
    m.add_segment({"data", mem::SegKind::Data, data_base, round_up(dsize, 8),
                   /*writable=*/true, /*executable=*/false});
  }
  m.add_segment({"heap", mem::SegKind::Heap, heap_base, heap_size,
                 /*writable=*/true, /*executable=*/false});
  m.add_segment({"stack", mem::SegKind::Stack, mem::kStackTop - mem::kStackSize,
                 mem::kStackSize + 0x4000, /*writable=*/true, /*executable=*/false});
  m.write_bytes(text_base, text_words.data(), text_words.size() * 4);
  if (!data_init.empty()) m.write_bytes(data_base, data_init.data(), data_init.size());
}

void Image::serialize(ByteWriter& w) const {
  w.put_u64(text_base);
  w.put_u32(static_cast<u32>(text_words.size()));
  for (u32 word : text_words) w.put_u32(word);
  w.put_u64(data_base);
  w.put_blob(data_init.data(), data_init.size());
  w.put_u64(data_size);
  w.put_u64(heap_base);
  w.put_u64(heap_size);
  w.put_u64(entry);
  symtab.serialize(w);
}

Image Image::deserialize(ByteReader& r) {
  Image img;
  img.text_base = r.get_u64();
  const u32 n = r.get_u32();
  img.text_words.reserve(n);
  for (u32 i = 0; i < n; ++i) img.text_words.push_back(r.get_u32());
  img.data_base = r.get_u64();
  img.data_init = r.get_blob();
  img.data_size = r.get_u64();
  img.heap_base = r.get_u64();
  img.heap_size = r.get_u64();
  img.entry = r.get_u64();
  img.symtab = SymbolTable::deserialize(r);
  return img;
}

}  // namespace dsprof::sym
