// Executable image: text + initialized data + entry point + symbol table.
// This is what the compiler produces, what the loader maps into simulated
// memory, and what the experiment stores as its "loadobjects" description.
#pragma once

#include <vector>

#include "mem/memory.hpp"
#include "support/bytestream.hpp"
#include "sym/symtab.hpp"

namespace dsprof::sym {

struct Image {
  u64 text_base = mem::kTextBase;
  std::vector<u32> text_words;
  u64 data_base = mem::kDataBase;
  std::vector<u8> data_init;
  u64 data_size = 0;  // >= data_init.size(); remainder zero-filled (bss)
  u64 heap_base = mem::kHeapBase;
  u64 heap_size = u64{1} << 32;  // 4 GB reservation (sparse)
  u64 entry = 0;
  SymbolTable symtab;

  u64 text_size() const { return text_words.size() * 4; }

  /// Map segments and copy text/data into `m`.
  void load_into(mem::Memory& m) const;

  void serialize(ByteWriter& w) const;
  static Image deserialize(ByteReader& r);
};

}  // namespace dsprof::sym
