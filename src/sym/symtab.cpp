#include "sym/symtab.hpp"

#include <algorithm>

namespace dsprof::sym {

void SymbolTable::add_function(FuncInfo f) {
  DSP_CHECK(f.lo < f.hi, "empty function " + f.name);
  funcs_.push_back(std::move(f));
  std::sort(funcs_.begin(), funcs_.end(),
            [](const FuncInfo& a, const FuncInfo& b) { return a.lo < b.lo; });
}

void SymbolTable::add_line(u64 pc, u32 line) {
  DSP_CHECK(lines_.empty() || lines_.back().pc <= pc, "line entries must be pc-sorted");
  lines_.push_back({pc, line});
}

void SymbolTable::add_memref(u64 pc, MemRef ref) { memrefs_[pc] = ref; }

void SymbolTable::set_branch_targets(std::vector<u64> sorted_targets) {
  DSP_CHECK(std::is_sorted(sorted_targets.begin(), sorted_targets.end()),
            "branch targets must be sorted");
  branch_targets_ = std::move(sorted_targets);
}

void SymbolTable::add_source_line(u32 line, std::string text) {
  source_[line] = std::move(text);
}

const FuncInfo* SymbolTable::find_function(u64 pc) const {
  auto it = std::upper_bound(funcs_.begin(), funcs_.end(), pc,
                             [](u64 v, const FuncInfo& f) { return v < f.lo; });
  if (it == funcs_.begin()) return nullptr;
  --it;
  return pc < it->hi ? &*it : nullptr;
}

std::optional<u32> SymbolTable::line_for(u64 pc) const {
  auto it = std::upper_bound(lines_.begin(), lines_.end(), pc,
                             [](u64 v, const LineEntry& e) { return v < e.pc; });
  if (it == lines_.begin()) return std::nullopt;
  --it;
  // A line entry covers PCs until the next entry, but only within a function.
  const FuncInfo* f = find_function(pc);
  const FuncInfo* fe = find_function(it->pc);
  if (f == nullptr || f != fe) return std::nullopt;
  return it->line;
}

const MemRef* SymbolTable::memref_for(u64 pc) const {
  auto it = memrefs_.find(pc);
  return it == memrefs_.end() ? nullptr : &it->second;
}

std::optional<u64> SymbolTable::branch_target_in(u64 lo, u64 hi) const {
  auto it = std::upper_bound(branch_targets_.begin(), branch_targets_.end(), lo);
  if (it != branch_targets_.end() && *it <= hi) return *it;
  return std::nullopt;
}

const std::string* SymbolTable::source_text(u32 line) const {
  auto it = source_.find(line);
  return it == source_.end() ? nullptr : &it->second;
}

u32 SymbolTable::max_line() const {
  u32 m = 0;
  for (const auto& [line, text] : source_) m = std::max(m, line);
  return m;
}

std::string SymbolTable::memref_string(u64 pc) const {
  const MemRef* r = memref_for(pc);
  if (!r) return "";
  switch (r->kind) {
    case MemRef::Kind::StructMember: {
      const Type& agg = types_.get(r->aggregate);
      DSP_CHECK(r->member < agg.members.size(), "bad member index");
      const Member& m = agg.members[r->member];
      return types_.aggregate_string(r->aggregate) + ".{" + types_.type_string(m.type) +
             " " + m.name + "}";
    }
    case MemRef::Kind::Scalar:
      return "{" + types_.type_string(r->aggregate) + " <scalar>}";
    case MemRef::Kind::Unidentified:
      return "{(Unidentified)}";
  }
  return "";
}

void SymbolTable::serialize(ByteWriter& w) const {
  types_.serialize(w);
  w.put_u32(static_cast<u32>(funcs_.size()));
  for (const auto& f : funcs_) {
    w.put_string(f.name);
    w.put_u64(f.lo);
    w.put_u64(f.hi);
  }
  w.put_u32(static_cast<u32>(lines_.size()));
  for (const auto& e : lines_) {
    w.put_u64(e.pc);
    w.put_u32(e.line);
  }
  w.put_u32(static_cast<u32>(memrefs_.size()));
  // Deterministic order for byte-identical round trips.
  std::vector<u64> pcs;
  pcs.reserve(memrefs_.size());
  for (const auto& [pc, ref] : memrefs_) pcs.push_back(pc);
  std::sort(pcs.begin(), pcs.end());
  for (u64 pc : pcs) {
    const MemRef& m = memrefs_.at(pc);
    w.put_u64(pc);
    w.put_u8(static_cast<u8>(m.kind));
    w.put_u32(m.aggregate);
    w.put_u32(m.member);
  }
  w.put_u32(static_cast<u32>(branch_targets_.size()));
  for (u64 t : branch_targets_) w.put_u64(t);
  w.put_u32(static_cast<u32>(source_.size()));
  std::vector<u32> linenos;
  for (const auto& [line, text] : source_) linenos.push_back(line);
  std::sort(linenos.begin(), linenos.end());
  for (u32 line : linenos) {
    w.put_u32(line);
    w.put_string(source_.at(line));
  }
  w.put_u8(hwcprof_ ? 1 : 0);
  w.put_u8(has_branch_targets_ ? 1 : 0);
}

SymbolTable SymbolTable::deserialize(ByteReader& r) {
  SymbolTable st;
  st.types_ = TypeTable::deserialize(r);
  const u32 nf = r.get_u32();
  for (u32 i = 0; i < nf; ++i) {
    FuncInfo f;
    f.name = r.get_string();
    f.lo = r.get_u64();
    f.hi = r.get_u64();
    st.funcs_.push_back(std::move(f));
  }
  const u32 nl = r.get_u32();
  for (u32 i = 0; i < nl; ++i) {
    LineEntry e;
    e.pc = r.get_u64();
    e.line = r.get_u32();
    st.lines_.push_back(e);
  }
  const u32 nm = r.get_u32();
  for (u32 i = 0; i < nm; ++i) {
    const u64 pc = r.get_u64();
    MemRef m;
    m.kind = static_cast<MemRef::Kind>(r.get_u8());
    m.aggregate = r.get_u32();
    m.member = r.get_u32();
    st.memrefs_[pc] = m;
  }
  const u32 nt = r.get_u32();
  for (u32 i = 0; i < nt; ++i) st.branch_targets_.push_back(r.get_u64());
  const u32 ns = r.get_u32();
  for (u32 i = 0; i < ns; ++i) {
    const u32 line = r.get_u32();
    st.source_[line] = r.get_string();
  }
  st.hwcprof_ = r.get_u8() != 0;
  st.has_branch_targets_ = r.get_u8() != 0;
  return st;
}

}  // namespace dsprof::sym
