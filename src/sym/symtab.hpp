// The per-executable symbol information that -xhwcprof -xdebugformat=dwarf
// produces (paper §2.1): for every memory-reference instruction, which data
// object (structure type + member, or scalar) it references; the table of
// branch-target PCs used to validate apropos backtracking; source line
// numbers per PC; and the function map.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/bytestream.hpp"
#include "sym/types.hpp"

namespace dsprof::sym {

/// Data descriptor for one memory-referencing instruction.
struct MemRef {
  enum class Kind : u8 {
    StructMember,  // {structure:node -}{long orientation}
    Scalar,        // access to a scalar (global/local) -> <Scalars> bucket
    Unidentified,  // compiler temporary; the compiler did not identify it
  };
  Kind kind = Kind::Unidentified;
  TypeId aggregate = kInvalidType;  // struct type (StructMember) / value type (Scalar)
  u32 member = 0;                   // member index within the struct
};

struct FuncInfo {
  std::string name;
  u64 lo = 0;  // first instruction address
  u64 hi = 0;  // one past the last instruction
};

struct LineEntry {
  u64 pc = 0;
  u32 line = 0;
};

/// Synthetic source: the DSL records one text line per statement so the
/// analyzer can render annotated source (Figure 3).
struct SourceLine {
  u32 line = 0;
  std::string text;
};

class SymbolTable {
 public:
  TypeTable& types() { return types_; }
  const TypeTable& types() const { return types_; }

  // --- population (compiler side) ------------------------------------------
  void add_function(FuncInfo f);
  void add_line(u64 pc, u32 line);
  void add_memref(u64 pc, MemRef ref);
  void set_branch_targets(std::vector<u64> sorted_targets);
  void add_source_line(u32 line, std::string text);
  void set_hwcprof(bool on) { hwcprof_ = on; }
  void set_has_branch_targets(bool on) { has_branch_targets_ = on; }

  // --- queries (collector / analyzer side) ----------------------------------
  const FuncInfo* find_function(u64 pc) const;
  const std::vector<FuncInfo>& functions() const { return funcs_; }
  std::optional<u32> line_for(u64 pc) const;
  /// Raw line table, pc-sorted at build time (order is *not* re-validated on
  /// deserialization — the sa linter checks it: rule line-table-order).
  const std::vector<LineEntry>& lines() const { return lines_; }
  /// nullptr when the compiler emitted no descriptor for this PC.
  const MemRef* memref_for(u64 pc) const;
  /// First branch-target address t with lo < t <= hi, or nullopt.
  std::optional<u64> branch_target_in(u64 lo, u64 hi) const;
  const std::vector<u64>& branch_targets() const { return branch_targets_; }
  const std::string* source_text(u32 line) const;
  u32 max_line() const;

  bool hwcprof() const { return hwcprof_; }
  bool has_branch_targets() const { return has_branch_targets_; }

  /// Paper-style data descriptor string for an annotated listing, e.g.
  /// "{structure:node -}{long orientation}"; empty if no descriptor.
  std::string memref_string(u64 pc) const;

  void serialize(ByteWriter& w) const;
  static SymbolTable deserialize(ByteReader& r);

 private:
  TypeTable types_;
  std::vector<FuncInfo> funcs_;          // sorted by lo
  std::vector<LineEntry> lines_;         // sorted by pc
  std::unordered_map<u64, MemRef> memrefs_;
  std::vector<u64> branch_targets_;      // sorted
  std::unordered_map<u32, std::string> source_;
  bool hwcprof_ = true;
  bool has_branch_targets_ = true;
};

}  // namespace dsprof::sym
