#include "sym/types.hpp"

namespace dsprof::sym {

TypeId TypeTable::add(Type t) {
  types_.push_back(std::move(t));
  return static_cast<TypeId>(types_.size() - 1);
}

TypeId TypeTable::add_base(std::string name, u64 size) {
  Type t;
  t.kind = TypeKind::Base;
  t.name = std::move(name);
  t.size = size;
  return add(std::move(t));
}

TypeId TypeTable::add_alias(std::string name, TypeId underlying) {
  const Type& u = get(underlying);
  Type t;
  t.kind = TypeKind::Alias;
  t.name = std::move(name);
  t.size = u.size;
  t.underlying = underlying;
  return add(std::move(t));
}

TypeId TypeTable::add_pointer(TypeId pointee) {
  get(pointee);  // bounds check
  Type t;
  t.kind = TypeKind::Pointer;
  t.size = 8;
  t.underlying = pointee;
  return add(std::move(t));
}

TypeId TypeTable::add_struct(std::string name, u64 size, std::vector<Member> members) {
  for (const auto& m : members) {
    get(m.type);  // bounds check
    DSP_CHECK(m.offset + m.size <= size, "member " + m.name + " exceeds struct size");
  }
  Type t;
  t.kind = TypeKind::Struct;
  t.name = std::move(name);
  t.size = size;
  t.members = std::move(members);
  return add(std::move(t));
}

TypeId TypeTable::declare_struct(std::string name) {
  Type t;
  t.kind = TypeKind::Struct;
  t.name = std::move(name);
  return add(std::move(t));
}

void TypeTable::define_struct(TypeId id, u64 size, std::vector<Member> members) {
  DSP_CHECK(id < types_.size() && types_[id].kind == TypeKind::Struct,
            "define_struct on non-struct");
  for (const auto& m : members) {
    get(m.type);
    DSP_CHECK(m.offset + m.size <= size, "member " + m.name + " exceeds struct size");
  }
  types_[id].size = size;
  types_[id].members = std::move(members);
}

const Type& TypeTable::get(TypeId id) const {
  DSP_CHECK(id < types_.size(), "bad TypeId");
  return types_[id];
}

TypeId TypeTable::find_struct(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Struct && types_[i].name == name) {
      return static_cast<TypeId>(i);
    }
  }
  return kInvalidType;
}

std::string TypeTable::type_string(TypeId id) const {
  const Type& t = get(id);
  switch (t.kind) {
    case TypeKind::Base:
      return t.name;
    case TypeKind::Alias:
      return t.name + "=" + type_string(t.underlying);
    case TypeKind::Pointer: {
      const Type& p = get(t.underlying);
      if (p.kind == TypeKind::Struct) return "pointer+structure:" + p.name;
      return "pointer+" + type_string(t.underlying);
    }
    case TypeKind::Struct:
      return "structure:" + t.name;
  }
  return "?";
}

std::string TypeTable::aggregate_string(TypeId id) const {
  const Type& t = get(id);
  if (t.kind == TypeKind::Struct) return "{structure:" + t.name + " -}";
  return "{" + type_string(id) + "}";
}

void TypeTable::serialize(ByteWriter& w) const {
  w.put_u32(static_cast<u32>(types_.size()));
  for (const auto& t : types_) {
    w.put_u8(static_cast<u8>(t.kind));
    w.put_string(t.name);
    w.put_u64(t.size);
    w.put_u32(t.underlying);
    w.put_u32(static_cast<u32>(t.members.size()));
    for (const auto& m : t.members) {
      w.put_string(m.name);
      w.put_u32(m.type);
      w.put_u64(m.offset);
      w.put_u64(m.size);
    }
  }
}

TypeTable TypeTable::deserialize(ByteReader& r) {
  TypeTable tt;
  const u32 n = r.get_u32();
  for (u32 i = 0; i < n; ++i) {
    Type t;
    t.kind = static_cast<TypeKind>(r.get_u8());
    t.name = r.get_string();
    t.size = r.get_u64();
    t.underlying = r.get_u32();
    const u32 nm = r.get_u32();
    for (u32 j = 0; j < nm; ++j) {
      Member m;
      m.name = r.get_string();
      m.type = r.get_u32();
      m.offset = r.get_u64();
      m.size = r.get_u64();
      t.members.push_back(std::move(m));
    }
    tt.types_.push_back(std::move(t));
  }
  return tt;
}

}  // namespace dsprof::sym
