// Type descriptions for data-space profiling — the information the paper's
// compiler writes into DWARF so the analyzer can name "which structure member
// did this load touch" (paper §2.1). Supports base types, typedefs (so
// annotations read "{cost_t=long cost}" as in Figure 4), pointers and structs
// with explicit member offsets.
#pragma once

#include <string>
#include <vector>

#include "support/bytestream.hpp"
#include "support/common.hpp"

namespace dsprof::sym {

using TypeId = u32;
inline constexpr TypeId kInvalidType = ~TypeId{0};

enum class TypeKind : u8 { Base, Alias, Pointer, Struct };

struct Member {
  std::string name;
  TypeId type = kInvalidType;
  u64 offset = 0;
  u64 size = 0;
};

struct Type {
  TypeKind kind = TypeKind::Base;
  std::string name;            // base/alias/struct name
  u64 size = 0;
  TypeId underlying = kInvalidType;  // Alias: aliased type; Pointer: pointee
  std::vector<Member> members;       // Struct only
};

class TypeTable {
 public:
  TypeId add_base(std::string name, u64 size);
  TypeId add_alias(std::string name, TypeId underlying);
  TypeId add_pointer(TypeId pointee);
  /// Members must already carry their final offsets (the compiler's layout
  /// engine computes them); `size` is the full struct size including padding.
  TypeId add_struct(std::string name, u64 size, std::vector<Member> members);

  /// Two-phase struct registration for recursive types (node* inside node):
  /// declare a named stub, then define its size and members.
  TypeId declare_struct(std::string name);
  void define_struct(TypeId id, u64 size, std::vector<Member> members);

  const Type& get(TypeId id) const;
  size_t count() const { return types_.size(); }

  /// Find a struct type by name; kInvalidType if absent.
  TypeId find_struct(const std::string& name) const;

  /// Human-readable element type: "long", "cost_t=long", "pointer+structure:node".
  std::string type_string(TypeId id) const;

  /// Aggregate display name as the paper prints it: "{structure:node -}".
  std::string aggregate_string(TypeId id) const;

  void serialize(ByteWriter& w) const;
  static TypeTable deserialize(ByteReader& r);

 private:
  TypeId add(Type t);
  std::vector<Type> types_;
};

}  // namespace dsprof::sym
