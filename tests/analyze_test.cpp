#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "analyze/feedback.hpp"
#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"

namespace dsprof::analyze {
namespace {

using machine::HwEvent;

class AnalyzeEndToEnd : public ::testing::Test {
 protected:
  static machine::CpuConfig small_machine() {
    // Scale the caches below the fixture's working set so E$ metrics flow.
    machine::CpuConfig cfg;
    cfg.hierarchy.dcache = {4 * 1024, 4, 32, false};
    cfg.hierarchy.ecache = {32 * 1024, 2, 512, true};
    cfg.hierarchy.dtlb = {8, 2, 8 * 1024};
    return cfg;
  }
  static void SetUpTestSuite() {
    auto mod = testfix::make_chase_module(4000, 8, 16384);
    image_ = new sym::Image(scc::compile(*mod));
    ex1_ = new experiment::Experiment(
        testfix::quick_collect(*image_, "+ecstall,1009,+ecrm,97", "hi", small_machine()));
    ex2_ = new experiment::Experiment(
        testfix::quick_collect(*image_, "+ecref,211,+dtlbm,13", "off", small_machine()));
    analysis_ = new Analysis({ex1_, ex2_});
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete ex2_;
    delete ex1_;
    delete image_;
  }
  static sym::Image* image_;
  static experiment::Experiment* ex1_;
  static experiment::Experiment* ex2_;
  static Analysis* analysis_;
};

sym::Image* AnalyzeEndToEnd::image_ = nullptr;
experiment::Experiment* AnalyzeEndToEnd::ex1_ = nullptr;
experiment::Experiment* AnalyzeEndToEnd::ex2_ = nullptr;
Analysis* AnalyzeEndToEnd::analysis_ = nullptr;

TEST_F(AnalyzeEndToEnd, MetricsPresent) {
  const auto& p = analysis_->present();
  EXPECT_TRUE(p[kUserCpuMetric]);
  EXPECT_TRUE(p[static_cast<size_t>(HwEvent::EC_stall_cycles)]);
  EXPECT_TRUE(p[static_cast<size_t>(HwEvent::EC_rd_miss)]);
  EXPECT_TRUE(p[static_cast<size_t>(HwEvent::EC_ref)]);
  EXPECT_TRUE(p[static_cast<size_t>(HwEvent::DTLB_miss)]);
  EXPECT_FALSE(p[static_cast<size_t>(HwEvent::IC_miss)]);
}

TEST_F(AnalyzeEndToEnd, FunctionMetricsSumToTotal) {
  for (size_t metric = 0; metric < kNumMetrics; ++metric) {
    double sum = 0;
    for (const auto& f : analysis_->functions(metric)) sum += f.mv[metric];
    EXPECT_DOUBLE_EQ(sum, analysis_->total()[metric]) << metric_name(metric);
  }
}

TEST_F(AnalyzeEndToEnd, PcMetricsSumToTotal) {
  for (size_t metric = 0; metric < kNumMetrics; ++metric) {
    double sum = 0;
    for (const auto& r : analysis_->pcs(metric)) sum += r.mv[metric];
    EXPECT_DOUBLE_EQ(sum, analysis_->total()[metric]);
  }
}

TEST_F(AnalyzeEndToEnd, DataObjectsSumToDataTotal) {
  for (size_t metric = 0; metric < machine::kNumHwEvents; ++metric) {
    double sum = 0;
    for (const auto& r : analysis_->data_objects(metric)) sum += r.mv[metric];
    EXPECT_DOUBLE_EQ(sum, analysis_->data_total()[metric]);
  }
}

TEST_F(AnalyzeEndToEnd, DataTotalsMatchHwTotals) {
  // Every hardware event lands in exactly one data bucket.
  for (size_t metric = 0; metric < machine::kNumHwEvents; ++metric) {
    EXPECT_DOUBLE_EQ(analysis_->data_total()[metric], analysis_->total()[metric]);
  }
  // Clock samples have no data-space attribution.
  EXPECT_DOUBLE_EQ(analysis_->data_total()[kUserCpuMetric], 0.0);
}

TEST_F(AnalyzeEndToEnd, PointerChaseProfileHasTheRightShape) {
  // walk_list (pointer chase over `pair`) should dominate E$ stalls, and the
  // `pair` struct should dominate the data-space view.
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto funcs = analysis_->functions(stall);
  ASSERT_FALSE(funcs.empty());
  EXPECT_EQ(funcs[0].name, "walk_list");
  EXPECT_GT(funcs[0].mv[stall], analysis_->total()[stall] * 0.5);

  const auto objs = analysis_->data_objects(stall);
  ASSERT_FALSE(objs.empty());
  EXPECT_EQ(objs[0].name, "{structure:pair -}");
  EXPECT_EQ(objs[0].cat, DataCat::Struct);
}

TEST_F(AnalyzeEndToEnd, MemberExpansionFindsHotMembers) {
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto rows = analysis_->members("pair");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].offset, 0u);
  EXPECT_EQ(rows[1].offset, 8u);
  EXPECT_EQ(rows[2].offset, 16u);
  // walk_list touches payload (+8) and next (+16), never key (+0).
  EXPECT_GT(rows[1].mv[stall] + rows[2].mv[stall], 0.0);
  const double key_share = rows[0].mv[stall];
  EXPECT_LT(key_share, (rows[1].mv[stall] + rows[2].mv[stall]) * 0.2);
  // The typedef shows up in the member name.
  EXPECT_NE(rows[1].name.find("val_t=long payload"), std::string::npos);
}

TEST_F(AnalyzeEndToEnd, EffectivenessHighWithHwcprof) {
  // The fixture's loops are only ~10 instructions long — skid regularly
  // crosses the loop-back join, so effectiveness is lower than on realistic
  // code (the MCF integration test checks the paper-level values).
  for (const auto& r : analysis_->effectiveness()) {
    EXPECT_GT(r.effectiveness(), 0.5) << metric_name(r.metric);
    if (r.metric == static_cast<size_t>(HwEvent::DTLB_miss)) {
      EXPECT_DOUBLE_EQ(r.effectiveness(), 1.0);  // precise counter
    }
  }
}

TEST_F(AnalyzeEndToEnd, AnnotatedSourceCoversCriticalLoop) {
  const auto rows = analysis_->annotated_source("walk_list");
  ASSERT_FALSE(rows.empty());
  bool found_loop = false;
  double loop_stall = 0;
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  for (const auto& r : rows) {
    if (r.text.find("while (cur != 0)") != std::string::npos ||
        r.text.find("sum + cur->payload") != std::string::npos) {
      found_loop = true;
      loop_stall += r.mv[stall];
    }
  }
  EXPECT_TRUE(found_loop);
}

TEST_F(AnalyzeEndToEnd, AnnotatedDisassemblyHasDescriptorsAndTargets) {
  const auto rows = analysis_->annotated_disassembly("walk_list");
  ASSERT_FALSE(rows.empty());
  bool any_annot = false, any_target = false, any_load = false;
  for (const auto& r : rows) {
    if (!r.data_annot.empty()) any_annot = true;
    if (r.artificial) any_target = true;
    if (r.text.find("ldx") != std::string::npos) any_load = true;
  }
  EXPECT_TRUE(any_annot);
  EXPECT_TRUE(any_target);
  EXPECT_TRUE(any_load);
}

TEST_F(AnalyzeEndToEnd, PcNaming) {
  const auto rows = analysis_->pcs(static_cast<size_t>(HwEvent::EC_stall_cycles));
  ASSERT_FALSE(rows.empty());
  const std::string name = analysis_->pc_name(rows[0].pc);
  EXPECT_NE(name.find(" + 0x"), std::string::npos);
}

TEST_F(AnalyzeEndToEnd, SegmentViewAttributesHeap) {
  const auto segs = analysis_->segments();
  double heap = 0, total = 0;
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  for (const auto& s : segs) {
    total += s.mv[stall];
    if (s.name == "heap") heap = s.mv[stall];
  }
  ASSERT_GT(total, 0.0);
  EXPECT_GT(heap, total * 0.9);  // the workload's data all lives on the heap
}

TEST_F(AnalyzeEndToEnd, PageAndLineViewsNonEmpty) {
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  EXPECT_FALSE(analysis_->pages(stall, 5).empty());
  EXPECT_FALSE(analysis_->cache_lines(stall, 5).empty());
  EXPECT_LE(analysis_->pages(stall, 5).size(), 5u);
}

TEST_F(AnalyzeEndToEnd, InstanceViewMapsToAllocations) {
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto rows = analysis_->instances(stall, 10);
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_GE(r.base, mem::kHeapBase);
    EXPECT_GT(r.size, 0u);
  }
}

TEST_F(AnalyzeEndToEnd, InstancesCarryPaperStyleNames) {
  // The paper names dynamic allocations by allocating function plus ordinal
  // ("mcf_arena[0]"). The chase fixture allocates twice from main: the node
  // array then the long array, so the instance view must show main[0] and
  // main[1] — not the legacy "alloc[k]" fallback for missing site PCs.
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto rows = analysis_->instances(stall, 10);
  ASSERT_EQ(rows.size(), 2u);  // both heap objects take E$ stalls
  std::set<std::string> names;
  for (const auto& r : rows) names.insert(r.name);
  EXPECT_TRUE(names.count("main[0]")) << render_instances(*analysis_, stall);
  EXPECT_TRUE(names.count("main[1]")) << render_instances(*analysis_, stall);
  // Allocation order ties the ordinal to the record: main[0] is the node
  // array (larger object, allocated first).
  for (const auto& r : rows) {
    if (r.name == "main[0]") {
      EXPECT_EQ(r.alloc_index, 0u);
    }
    if (r.name == "main[1]") {
      EXPECT_EQ(r.alloc_index, 1u);
    }
  }
  EXPECT_NE(render_instances(*analysis_, stall).find("main[0]"), std::string::npos);
}

TEST_F(AnalyzeEndToEnd, ReportsRenderWithoutError) {
  EXPECT_NE(render_overview(*analysis_).find("<Total>"), std::string::npos);
  const std::string funcs = render_function_list(*analysis_);
  EXPECT_NE(funcs.find("walk_list"), std::string::npos);
  EXPECT_NE(funcs.find("<Total>"), std::string::npos);
  EXPECT_NE(render_annotated_source(*analysis_, "walk_list").find("while"),
            std::string::npos);
  EXPECT_NE(render_annotated_disassembly(*analysis_, "walk_list").find("ldx"),
            std::string::npos);
  EXPECT_NE(render_hot_pcs(*analysis_, static_cast<size_t>(HwEvent::EC_rd_miss), 10)
                .find("walk_list + 0x"),
            std::string::npos);
  const std::string objs = render_data_objects(
      *analysis_, static_cast<size_t>(HwEvent::EC_stall_cycles));
  EXPECT_NE(objs.find("{structure:pair -}"), std::string::npos);
  EXPECT_NE(objs.find("<Unknown>"), std::string::npos);
  EXPECT_NE(render_member_expansion(*analysis_, "pair").find("payload"), std::string::npos);
  EXPECT_NE(render_effectiveness(*analysis_).find("Effectiveness"), std::string::npos);
  EXPECT_NE(render_segments(*analysis_).find("heap"), std::string::npos);
}

TEST_F(AnalyzeEndToEnd, PrefetchFeedbackNamesHotReference) {
  const auto entries =
      prefetch_feedback(*analysis_, static_cast<size_t>(HwEvent::EC_stall_cycles), 0.02);
  ASSERT_FALSE(entries.empty());
  bool has_pair_ref = false;
  for (const auto& e : entries) {
    if (e.function == "walk_list" && e.struct_name == "pair") has_pair_ref = true;
  }
  EXPECT_TRUE(has_pair_ref);
  // Round-trip through the text format.
  const auto back = feedback_from_text(feedback_to_text(entries));
  ASSERT_EQ(back.size(), entries.size());
  EXPECT_EQ(back[0].function, entries[0].function);
  EXPECT_EQ(back[0].member, entries[0].member);
}

TEST(AnalyzeUnits, FeedbackParserSkipsMalformedLines) {
  // A hand-edited / corrupted feedback file: each bad line is skipped and
  // counted, never folded into the result as garbage.
  const std::string text =
      "# comment\n"
      "\n"
      "walk_list 12 pair payload 0.25\n"    // good
      "walk_list 12 pair payload\n"         // wrong field count (4)
      "walk_list 12 pair payload 0.25 9\n"  // wrong field count (6)
      "walk_list xx pair payload 0.25\n"    // non-numeric line
      "walk_list -2 pair payload 0.25\n"    // negative line
      "walk_list 12 pair payload nan\n"     // NaN share
      "walk_list 12 pair payload 1.75\n"    // share outside [0, 1]
      "walk_list 12 pair payload -0.1\n"    // share outside [0, 1]
      "scan 3 - - 0.5\n";                   // good (scalar reference)
  FeedbackParseStats stats;
  const auto entries = feedback_from_text(text, &stats);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 7u);
  EXPECT_NE(stats.first_error.find("line 4"), std::string::npos);
  EXPECT_EQ(entries[0].function, "walk_list");
  EXPECT_EQ(entries[0].line, 12u);
  EXPECT_DOUBLE_EQ(entries[0].share, 0.25);
  EXPECT_EQ(entries[1].struct_name, "");  // "-" maps to empty
  EXPECT_EQ(entries[1].member, "");
}

TEST(AnalyzeUnits, FeedbackParserEmptyAndCommentOnly) {
  FeedbackParseStats stats;
  EXPECT_TRUE(feedback_from_text("", &stats).empty());
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(feedback_from_text("# nothing here\n\n", &stats).empty());
  EXPECT_EQ(stats.skipped, 0u);
  // stats pointer is optional.
  EXPECT_TRUE(feedback_from_text("garbage line\n").empty());
}

TEST(AnalyzeUnits, DataCatNames) {
  EXPECT_STREQ(data_cat_name(DataCat::Unresolvable), "(Unresolvable)");
  EXPECT_STREQ(data_cat_name(DataCat::Scalars), "<Scalars>");
  EXPECT_TRUE(data_cat_is_unknown(DataCat::Unspecified));
  EXPECT_TRUE(data_cat_is_unknown(DataCat::Unverifiable));
  EXPECT_FALSE(data_cat_is_unknown(DataCat::Scalars));
  EXPECT_FALSE(data_cat_is_unknown(DataCat::Struct));
}

TEST(AnalyzeUnits, MetricNamesRoundTrip) {
  for (size_t m = 0; m < kNumMetrics; ++m) {
    EXPECT_EQ(metric_by_short_name(metric_short_name(m)), m);
  }
  EXPECT_THROW(metric_by_short_name("nope"), Error);
  EXPECT_TRUE(metric_in_cycles(kUserCpuMetric));
  EXPECT_TRUE(metric_in_cycles(static_cast<size_t>(HwEvent::EC_stall_cycles)));
  EXPECT_FALSE(metric_in_cycles(static_cast<size_t>(HwEvent::EC_rd_miss)));
}

TEST(AnalyzeUnits, SplitFraction) {
  // 120-byte objects from an aligned base over 512-byte lines: 14 of every
  // 64 objects straddle a boundary (the paper reports 28% for its heap
  // layout; the exact value depends on the base offset).
  EXPECT_NEAR(Analysis::split_fraction(0, 120, 6400, 512), 14.0 / 64.0, 1e-9);
  // 128-byte objects from an aligned base never straddle.
  EXPECT_DOUBLE_EQ(Analysis::split_fraction(0, 128, 6400, 512), 0.0);
  // ... but from a misaligned base they do.
  EXPECT_GT(Analysis::split_fraction(8, 128, 6400, 512), 0.2);
}

TEST(AnalyzeUnits, UnascertainableWithoutHwcprof) {
  auto mod = testfix::make_chase_module(300, 2, 512);
  scc::CompileOptions copt;
  copt.hwcprof = false;
  const sym::Image img = scc::compile(*mod, copt);
  auto ex = testfix::quick_collect(img, "+dcrm,89");
  Analysis a(ex);
  const auto objs = a.data_objects(static_cast<size_t>(HwEvent::DC_rd_miss));
  double unasc = 0, unknown = 0, total = 0;
  for (const auto& r : objs) {
    const double v = r.mv[static_cast<size_t>(HwEvent::DC_rd_miss)];
    total += v;
    if (r.cat == DataCat::Unascertainable) unasc += v;
    if (data_cat_is_unknown(r.cat)) unknown += v;
  }
  ASSERT_GT(total, 0.0);
  // Without -xhwcprof nothing can be attributed to a real data object:
  // validated triggers are (Unascertainable), blocked ones (Unresolvable).
  EXPECT_DOUBLE_EQ(unknown, total);
  EXPECT_GT(unasc, total * 0.4);
}

TEST(AnalyzeUnits, UnverifiableWithoutDwarf) {
  auto mod = testfix::make_chase_module(300, 2, 512);
  scc::CompileOptions copt;
  copt.dwarf = false;
  const sym::Image img = scc::compile(*mod, copt);
  auto ex = testfix::quick_collect(img, "+dcrm,89");
  Analysis a(ex);
  const auto objs = a.data_objects(static_cast<size_t>(HwEvent::DC_rd_miss));
  ASSERT_FALSE(objs.empty());
  EXPECT_EQ(objs[0].cat, DataCat::Unverifiable);
}

TEST(AnalyzeUnits, ConcurrentReaders) {
  // The Analysis view accessors are safe to call from multiple threads: the
  // first caller triggers the lazy reduction under the internal mutex, every
  // later caller sees the same memoized result (analysis.hpp documents this
  // contract, dsprofd relies on it when several snapshot requests race).
  auto mod = testfix::make_chase_module(800, 4, 4096);
  const sym::Image img = scc::compile(*mod);
  auto ex = testfix::quick_collect(img, "+ecstall,1009,+ecrm,97", "hi");

  // What a single-threaded pass over the same events produces.
  Analysis reference(ex);
  const std::string expected = render_json_report(reference);

  Analysis shared(ex);  // fresh: the reduction has not run yet
  constexpr int kThreads = 8;
  std::vector<std::string> reports(kThreads);
  std::vector<double> totals(kThreads, -1.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix of view entry points so several lazy paths race.
      const auto funcs = shared.functions(kUserCpuMetric);
      totals[t] = shared.total()[kUserCpuMetric];
      (void)shared.pcs(static_cast<size_t>(HwEvent::EC_rd_miss));
      (void)shared.data_objects(static_cast<size_t>(HwEvent::EC_rd_miss));
      reports[t] = render_json_report(shared);
      ASSERT_FALSE(funcs.empty());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reports[t], expected) << "thread " << t;
    EXPECT_DOUBLE_EQ(totals[t], reference.total()[kUserCpuMetric]);
  }
}

TEST(AnalyzeUnits, MixedExperimentsMustShareBinary) {
  auto mod1 = testfix::make_chase_module(300, 2, 512);
  auto mod2 = testfix::make_chase_module(400, 2, 512);
  const sym::Image img1 = scc::compile(*mod1);
  const sym::Image img2 = scc::compile(*mod2);
  auto ex1 = testfix::quick_collect(img1, "+dcrm,89");
  auto ex2 = testfix::quick_collect(img2, "+dcrm,89");
  EXPECT_THROW(Analysis({&ex1, &ex2}), Error);
}

}  // namespace
}  // namespace dsprof::analyze
