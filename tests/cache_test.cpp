#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "support/rng.hpp"

namespace dsprof::cache {
namespace {

TEST(Cache, HitAfterFill) {
  Cache c({1024, 2, 32, true});
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x101F, false).hit);   // same 32B line
  EXPECT_FALSE(c.access(0x1020, false).hit);  // next line
}

TEST(Cache, LruEviction) {
  // Direct-mapped 2-set cache, 32B lines: addresses 0, 64 map to set 0.
  Cache c({64, 1, 32, true});
  c.access(0, false);
  c.access(64, false);                     // evicts 0
  EXPECT_FALSE(c.access(0, false).hit);    // 0 was evicted
}

TEST(Cache, LruKeepsRecentlyUsed) {
  // 1 set, 2 ways, 32B lines. Lines A=0, B=64, C=128.
  Cache c({64, 2, 32, true});
  c.access(0, false);    // A
  c.access(64, false);   // B
  c.access(0, false);    // touch A (B is now LRU)
  c.access(128, false);  // C evicts B
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(64, false).hit);
}

TEST(Cache, DirtyEvictionReported) {
  Cache c({64, 1, 32, true});
  c.access(0, true);  // write-allocate, dirty
  const CacheAccess r = c.access(64, false);
  EXPECT_TRUE(r.filled);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_addr, 0u);
}

TEST(Cache, WriteNoAllocateLeavesCacheUntouched) {
  Cache c({1024, 2, 32, false});
  const CacheAccess w = c.access(0x2000, true);
  EXPECT_FALSE(w.hit);
  EXPECT_FALSE(w.filled);
  EXPECT_FALSE(c.probe(0x2000));
  // But a write to a resident line hits and dirties it.
  c.access(0x2000, false);
  EXPECT_TRUE(c.access(0x2000, true).hit);
}

TEST(Cache, FillLineDoesNotCountAsAccess) {
  Cache c({1024, 2, 32, true});
  c.fill_line(0x3000);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.prefetch_fills(), 1u);
  EXPECT_TRUE(c.access(0x3000, false).hit);
}

TEST(Cache, StatsConsistent) {
  Cache c({4096, 4, 64, true});
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) c.access(rng.below(1 << 16), false);
  EXPECT_EQ(c.accesses(), 10000u);
  EXPECT_EQ(c.hits() + c.misses(), c.accesses());
}

TEST(Cache, InvalidGeometryRejected) {
  EXPECT_THROW(Cache({1000, 2, 32, true}), Error);  // not divisible
  EXPECT_THROW(Cache({1024, 2, 33, true}), Error);  // line not pow2
}

struct Geometry {
  u64 size;
  u32 ways;
  u32 line;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, SequentialSweepMissesOncePerLine) {
  const Geometry g = GetParam();
  Cache c({g.size, g.ways, g.line, true});
  // Sweep exactly the cache capacity: every line misses once, then all hit.
  for (u64 a = 0; a < g.size; a += 8) c.access(a, false);
  EXPECT_EQ(c.misses(), g.size / g.line);
  const u64 m0 = c.misses();
  for (u64 a = 0; a < g.size; a += 8) c.access(a, false);
  EXPECT_EQ(c.misses(), m0);  // fits exactly: no more misses
}

TEST_P(CacheGeometry, WorkingSetTwiceCapacityThrashes) {
  const Geometry g = GetParam();
  Cache c({g.size, g.ways, g.line, true});
  for (int rep = 0; rep < 3; ++rep) {
    for (u64 a = 0; a < 2 * g.size; a += g.line) c.access(a, false);
  }
  // LRU + round-robin sweep over 2x capacity: every access misses.
  EXPECT_EQ(c.misses(), c.accesses());
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(Geometry{64 * 1024, 4, 32},      // US-III D$
                                           Geometry{8 * 1024 * 1024, 2, 512},  // US-III E$
                                           Geometry{1024, 1, 64},
                                           Geometry{16 * 1024, 8, 128}));

TEST(Tlb, MissThenHit) {
  Tlb t({64, 2, 8192});
  EXPECT_FALSE(t.lookup(0x10000));
  EXPECT_TRUE(t.lookup(0x10000));
  EXPECT_TRUE(t.lookup(0x10000 + 8191));  // same page
  EXPECT_FALSE(t.lookup(0x10000 + 8192));
}

TEST(Tlb, CoverageLimit) {
  Tlb t({64, 2, 8192});
  // Touch 128 pages round-robin: exceeds the 64-entry TLB; all miss.
  for (int rep = 0; rep < 2; ++rep) {
    for (u64 p = 0; p < 128; ++p) t.lookup(p * 8192);
  }
  EXPECT_EQ(t.misses(), t.accesses());
}

TEST(Tlb, LargePagesReduceMisses) {
  // The §3.3 -xpagesize_heap experiment in miniature: the same footprint
  // with 512 KB pages fits the 64-entry TLB, with 8 KB pages it does not.
  const u64 footprint = 16 * 1024 * 1024;
  Tlb small({64, 2, 8 * 1024});
  Tlb large({64, 2, 512 * 1024});
  Xoshiro256 rng(9);
  u64 small_misses = 0, large_misses = 0;
  for (int i = 0; i < 20000; ++i) {
    const u64 a = rng.below(footprint);
    if (!small.lookup(a)) ++small_misses;
    if (!large.lookup(a)) ++large_misses;
  }
  EXPECT_GT(small_misses, large_misses * 10);
}

// ---------------------------------------------------------------------------
// Hierarchy

TEST(Hierarchy, LoadMissCountsEcRefAndRdMiss) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  const AccessOutcome out = h.load(0x10000);
  EXPECT_TRUE(out.dc_rd_miss);
  EXPECT_TRUE(out.ec_ref);
  EXPECT_TRUE(out.ec_rd_miss);
  EXPECT_TRUE(out.dtlb_miss);
  EXPECT_GT(out.stall_cycles, 200u);
  EXPECT_EQ(out.ec_stall_cycles, h.config().ec_miss_cycles);

  const AccessOutcome again = h.load(0x10000);
  EXPECT_FALSE(again.dc_rd_miss);
  EXPECT_FALSE(again.ec_ref);
  EXPECT_FALSE(again.dtlb_miss);
  EXPECT_EQ(again.stall_cycles, h.config().dc_hit_cycles);
}

TEST(Hierarchy, StoreIsWriteThrough) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  const AccessOutcome st = h.store(0x20000);
  EXPECT_TRUE(st.ec_ref);        // every store reaches the E$
  EXPECT_TRUE(st.dc_wr_miss);    // no write-allocate in D$
  EXPECT_FALSE(st.ec_rd_miss);   // write misses are not read misses
  EXPECT_EQ(st.ec_stall_cycles, 0u);  // hidden by the store buffer
  // The store allocated in E$ but not D$: a load still misses D$, hits E$.
  const AccessOutcome ld = h.load(0x20000);
  EXPECT_TRUE(ld.dc_rd_miss);
  EXPECT_FALSE(ld.ec_rd_miss);
}

TEST(Hierarchy, DcHitAfterLoadFill) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  h.load(0x30000);
  const AccessOutcome st = h.store(0x30000);
  EXPECT_FALSE(st.dc_wr_miss);  // line resident: write-through hit
  EXPECT_TRUE(st.ec_ref);
}

TEST(Hierarchy, StreamPrefetchHidesSequentialMisses) {
  HierarchyConfig cfg = HierarchyConfig::ultrasparc3();
  cfg.ec_stream_prefetch = true;
  MemoryHierarchy with(cfg);
  cfg.ec_stream_prefetch = false;
  MemoryHierarchy without(cfg);
  u64 miss_with = 0, miss_without = 0;
  for (u64 a = 0x100000; a < 0x100000 + (1 << 22); a += 32) {
    if (with.load(a).ec_rd_miss) ++miss_with;
    if (without.load(a).ec_rd_miss) ++miss_without;
  }
  EXPECT_LT(miss_with, miss_without / 4);
}

TEST(Hierarchy, PrefetchInstructionFillsEc) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  // Prefetch requires a resident TLB entry; warm it with a nearby load.
  h.load(0x40000);
  const AccessOutcome pf = h.prefetch(0x40000 + 512);
  EXPECT_TRUE(pf.ec_ref);
  EXPECT_EQ(pf.stall_cycles, 0u);
  const AccessOutcome ld = h.load(0x40000 + 512);
  EXPECT_FALSE(ld.ec_rd_miss);  // prefetched into E$ (and D$)
  EXPECT_FALSE(ld.dc_rd_miss);
}

TEST(Hierarchy, PrefetchDroppedOnTlbMiss) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  const AccessOutcome pf = h.prefetch(0x7F0000);
  EXPECT_FALSE(pf.ec_ref);
  EXPECT_FALSE(pf.dtlb_miss);  // aborted, not counted
  EXPECT_TRUE(h.load(0x7F0000).ec_rd_miss);
}

TEST(Hierarchy, FetchMissesOncePerLine) {
  MemoryHierarchy h(HierarchyConfig::ultrasparc3());
  EXPECT_TRUE(h.fetch(0x100000000ull).ic_miss);
  EXPECT_FALSE(h.fetch(0x100000004ull).ic_miss);  // same line, sequential
  EXPECT_TRUE(h.fetch(0x100000020ull).ic_miss);
}

}  // namespace
}  // namespace dsprof::cache
