// Callstack recording and the callers-callees / inclusive-metric views
// (paper §2.2: experiments record "the callstacks associated with" profile
// events; §2.3: the analyzer shows callers and callees with attributed
// metrics).
#include <gtest/gtest.h>

#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"

namespace dsprof {
namespace {

using analyze::Analysis;
using machine::HwEvent;

/// main -> outer -> inner(memory-heavy); plus main -> direct(memory-heavy).
std::unique_ptr<scc::Module> make_nested_module() {
  using namespace scc;
  auto m = std::make_unique<Module>();
  Function* mal = add_runtime(*m);

  Function* inner = m->add_function("inner");
  {
    FunctionBuilder fb(*m, *inner);
    auto arr = fb.param("arr", Type::ptr_i64());
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(sum, sum + arr.idx((i * 127) % n));
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }
  Function* outer = m->add_function("outer");
  {
    FunctionBuilder fb(*m, *outer);
    auto arr = fb.param("arr", Type::ptr_i64());
    auto n = fb.param("n", Type::i64());
    fb.ret(fb.call(inner, {arr, n}) + 1);
  }
  Function* direct = m->add_function("direct");
  {
    FunctionBuilder fb(*m, *direct);
    auto arr = fb.param("arr", Type::ptr_i64());
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(sum, sum + arr.idx((i * 131) % n));
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }
  Function* main = m->add_function("main");
  {
    FunctionBuilder fb(*m, *main);
    auto arr = fb.local("arr", Type::ptr_i64());
    auto it = fb.local("it", Type::i64());
    auto acc = fb.local("acc", Type::i64());
    const i64 n = 20000;
    fb.set(arr, cast(fb.call(mal, {Val(n * 8)}), Type::ptr_i64()));
    fb.set(acc, 0);
    fb.set(it, 0);
    fb.while_(it < 10, [&] {
      fb.set(acc, acc + fb.call(outer, {arr, Val(n)}));
      fb.set(acc, acc + fb.call(direct, {arr, Val(n)}));
      fb.set(it, it + 1);
    });
    fb.ret(acc & 0xFF);
  }
  return m;
}

class CallGraph : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mod = make_nested_module();
    image_ = new sym::Image(scc::compile(*mod));
    machine::CpuConfig cfg;
    cfg.hierarchy.ecache = {64 * 1024, 2, 512, true};
    ex_ = new experiment::Experiment(
        testfix::quick_collect(*image_, "+ecstall,1009,+ecrm,97", "hi", cfg));
    analysis_ = new Analysis(*ex_);
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete ex_;
    delete image_;
  }
  static sym::Image* image_;
  static experiment::Experiment* ex_;
  static Analysis* analysis_;
};

sym::Image* CallGraph::image_ = nullptr;
experiment::Experiment* CallGraph::ex_ = nullptr;
Analysis* CallGraph::analysis_ = nullptr;

TEST_F(CallGraph, EventsCarryCallstacks) {
  size_t with_stack = 0, total = 0;
  for (const auto& e : ex_->events) {
    ++total;
    if (!e.callstack.empty()) ++with_stack;
    // Every call site must be a CALL instruction inside text.
    for (u64 site : e.callstack) {
      EXPECT_GE(site, ex_->image.text_base);
      EXPECT_LT(site, ex_->image.text_base + ex_->image.text_size());
    }
  }
  ASSERT_GT(total, 50u);
  // Almost everything happens below main (at least one frame).
  EXPECT_GT(with_stack, total * 8 / 10);
}

TEST_F(CallGraph, InclusiveIsAtLeastExclusive) {
  for (size_t metric = 0; metric < analyze::kNumMetrics; ++metric) {
    auto incl = analysis_->functions_inclusive(metric);
    for (const auto& f : analysis_->functions(metric)) {
      double inc = 0;
      for (const auto& g : incl) {
        if (g.name == f.name) inc = g.mv[metric];
      }
      EXPECT_GE(inc, f.mv[metric] - 1e-9) << f.name << " metric " << metric;
    }
  }
}

TEST_F(CallGraph, MainInclusiveCoversEverything) {
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  double main_incl = 0;
  for (const auto& f : analysis_->functions_inclusive(stall)) {
    if (f.name == "main") main_incl = f.mv[stall];
  }
  // All stall events happen inside main's dynamic extent (modulo the
  // handful delivered in _start / with truncated stacks).
  EXPECT_GT(main_incl, analysis_->total()[stall] * 0.95);
}

TEST_F(CallGraph, CallersAndCalleesMatchTheProgramStructure) {
  const auto callers_inner = analysis_->callers_of("inner");
  ASSERT_EQ(callers_inner.size(), 1u);
  EXPECT_EQ(callers_inner[0].name, "outer");

  bool outer_calls_inner = false;
  for (const auto& r : analysis_->callees_of("outer")) {
    if (r.name == "inner") outer_calls_inner = true;
  }
  EXPECT_TRUE(outer_calls_inner);

  // main's callees include outer and direct (and malloc).
  std::vector<std::string> callees;
  for (const auto& r : analysis_->callees_of("main")) callees.push_back(r.name);
  auto has = [&](const char* n) {
    return std::find(callees.begin(), callees.end(), n) != callees.end();
  };
  EXPECT_TRUE(has("outer"));
  EXPECT_TRUE(has("direct"));
}

TEST_F(CallGraph, EdgeWeightsFlowThroughTheChain) {
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  // Weight attributed to outer->inner equals inner's exclusive weight
  // (inner is only called from outer and calls nothing).
  double inner_excl = 0;
  for (const auto& f : analysis_->functions(stall)) {
    if (f.name == "inner") inner_excl = f.mv[stall];
  }
  double edge = 0;
  for (const auto& r : analysis_->callers_of("inner")) edge += r.attributed[stall];
  EXPECT_NEAR(edge, inner_excl, inner_excl * 0.01 + 1);
  ASSERT_GT(inner_excl, 0.0);
}

TEST_F(CallGraph, RendererShowsBothDirections) {
  const std::string out = analyze::render_callers_callees(*analysis_, "outer");
  EXPECT_NE(out.find("main (caller)"), std::string::npos);
  EXPECT_NE(out.find("inner (callee)"), std::string::npos);
  EXPECT_NE(out.find("*outer (inclusive)"), std::string::npos);
}

TEST_F(CallGraph, CallstacksSurviveSaveLoad) {
  const std::string dir = ::testing::TempDir() + "/dsp_callstack_exp";
  ex_->save(dir);
  const experiment::Experiment back = experiment::Experiment::load(dir);
  ASSERT_EQ(back.events.size(), ex_->events.size());
  for (size_t i = 0; i < back.events.size(); i += 7) {
    EXPECT_EQ(back.events[i].callstack, ex_->events[i].callstack);
  }
}

TEST(CallGraphRecursion, RecursiveStacksAreBounded) {
  // sort_basket-style recursion must not inflate inclusive metrics: a
  // recursive function appears once per event in the inclusive view.
  using namespace scc;
  Module m;
  Function* mal = add_runtime(m);
  Function* rec = m.add_function("rec");
  {
    FunctionBuilder fb(m, *rec);
    auto arr = fb.param("arr", Type::ptr_i64());
    auto n = fb.param("n", Type::i64());
    fb.if_(n <= 0, [&] { fb.ret(Val(0)); });
    auto x = fb.local("x", Type::i64());
    fb.set(x, arr.idx((n * 119) % 4096));
    fb.ret(x + fb.call(rec, {arr, n - 1}));
  }
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto arr = fb.local("arr", Type::ptr_i64());
    auto it = fb.local("it", Type::i64());
    auto acc = fb.local("acc", Type::i64());
    fb.set(arr, cast(fb.call(mal, {Val(4096 * 8)}), Type::ptr_i64()));
    fb.set(acc, 0);
    fb.set(it, 0);
    fb.while_(it < 200, [&] {
      fb.set(acc, acc + fb.call(rec, {arr, Val(100)}));
      fb.set(it, it + 1);
    });
    fb.ret(acc & 0xFF);
  }
  const sym::Image img = scc::compile(m);
  auto ex = testfix::quick_collect(img, "+dcrm,89");
  Analysis a(ex);
  const size_t dcrm = static_cast<size_t>(HwEvent::DC_rd_miss);
  double rec_incl = 0, total = a.total()[dcrm];
  for (const auto& f : a.functions_inclusive(dcrm)) {
    if (f.name == "rec") rec_incl = f.mv[dcrm];
  }
  ASSERT_GT(total, 0.0);
  EXPECT_LE(rec_incl, total + 1e-9);  // deduped: never exceeds the total
  // rec is its own dominant caller.
  double self_edge = 0, other = 0;
  for (const auto& r : a.callers_of("rec")) {
    if (r.name == "rec") self_edge = r.attributed[dcrm];
    else other += r.attributed[dcrm];
  }
  EXPECT_GT(self_edge, other);
}

}  // namespace
}  // namespace dsprof
