#include <gtest/gtest.h>

#include <map>

#include "dsl_fixtures.hpp"

namespace dsprof::collect {
namespace {

using machine::HwEvent;

TEST(CounterSpec, ParsesNamesRatesAndBacktrackFlag) {
  const auto specs = parse_counter_spec("+ecstall,on,+ecrm,on");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].event, HwEvent::EC_stall_cycles);
  EXPECT_TRUE(specs[0].backtrack);
  EXPECT_EQ(specs[0].pic, 0u);
  EXPECT_EQ(specs[1].event, HwEvent::EC_rd_miss);
  EXPECT_TRUE(specs[1].backtrack);
  EXPECT_EQ(specs[1].pic, 1u);
}

TEST(CounterSpec, PaperCommandLines) {
  // The two command lines of §3.1.
  EXPECT_NO_THROW(parse_counter_spec("+ecstall,lo,+ecrm,on"));
  EXPECT_NO_THROW(parse_counter_spec("+ecref,on,+dtlbm,on"));
}

TEST(CounterSpec, NumericIntervalAndNoBacktrack) {
  const auto specs = parse_counter_spec("dtlbm,9973");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].interval, 9973u);
  EXPECT_FALSE(specs[0].backtrack);
}

TEST(CounterSpec, RegisterConflictRejected) {
  // ecstall and ecref both require PIC0 (as on the real chip, "two counters
  // must be on different registers").
  EXPECT_THROW(parse_counter_spec("+ecstall,on,+ecref,on"), Error);
  EXPECT_THROW(parse_counter_spec("+ecrm,on,+dtlbm,on"), Error);
}

TEST(CounterSpec, ErrorsRejected) {
  EXPECT_THROW(parse_counter_spec("bogus,on"), Error);
  EXPECT_THROW(parse_counter_spec("ecstall"), Error);       // missing rate
  EXPECT_THROW(parse_counter_spec("ecstall,fast"), Error);  // bad rate word
  EXPECT_THROW(parse_counter_spec("cycles,on,insts,on,icm,on"), Error);  // > 2
}

/// The Error message produced by a bad spec ("" if it unexpectedly parses).
std::string spec_error(const std::string& spec) {
  try {
    parse_counter_spec(spec);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(CounterSpec, ConflictMessageNamesBothCountersAndTheRegister) {
  // ecstall and ecref both require PIC0: the error must say which counter
  // could not be scheduled, which register it needs, and who holds it.
  const std::string msg = spec_error("+ecstall,on,+ecref,on");
  EXPECT_NE(msg.find("'ecref'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("PIC0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'ecstall'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cannot be scheduled"), std::string::npos) << msg;
}

TEST(CounterSpec, UnknownCounterNameIsNamed) {
  const std::string msg = spec_error("bogus,on");
  EXPECT_NE(msg.find("unknown hardware counter: bogus"), std::string::npos) << msg;
}

TEST(CounterSpec, MalformedRatesAreExplained) {
  // A bad rate word names the offender and lists the accepted forms.
  const std::string word = spec_error("ecstall,fast");
  EXPECT_NE(word.find("bad counter rate 'fast'"), std::string::npos) << word;
  EXPECT_NE(word.find("'hi', 'on', 'lo'"), std::string::npos) << word;
  // A zero interval is rejected (the counter would overflow immediately).
  const std::string zero = spec_error("ecstall,0");
  EXPECT_NE(zero.find("must be positive"), std::string::npos) << zero;
  // An empty rate token is rejected too ("ecstall," tokenizes to a pair).
  const std::string empty = spec_error("ecstall,");
  EXPECT_NE(empty.find("empty counter rate"), std::string::npos) << empty;
}

TEST(CounterSpec, DuplicatePlusPrefixRejected) {
  const std::string msg = spec_error("++ecstall,on");
  EXPECT_NE(msg.find("duplicate '+' prefix on counter '++ecstall'"), std::string::npos)
      << msg;
  // A bare '+' has no counter name at all.
  const std::string bare = spec_error("+,on");
  EXPECT_NE(bare.find("missing counter name after '+'"), std::string::npos) << bare;
}

TEST(CounterSpec, OddTokenCountShowsAnExample) {
  const std::string msg = spec_error("ecstall");
  EXPECT_NE(msg.find("name,rate pairs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("+ecstall,on,+ecrm,hi"), std::string::npos) << msg;
}

TEST(CounterSpec, TooManyCountersNamesTheLimit) {
  const std::string msg = spec_error("cycles,on,insts,on,icm,on");
  EXPECT_NE(msg.find("at most 2 hardware counters"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 3"), std::string::npos) << msg;
}

TEST(CounterSpec, IntervalsArePrime) {
  for (size_t i = 0; i < machine::kNumHwEvents; ++i) {
    for (const char* rate : {"hi", "on", "lo"}) {
      const u64 v = overflow_interval(static_cast<HwEvent>(i), rate);
      EXPECT_EQ(next_prime(v), v) << "interval not prime for event " << i << " rate " << rate;
    }
  }
}

TEST(CounterSpec, ListCountersMentionsEverything) {
  const std::string text = list_counters();
  for (size_t i = 0; i < machine::kNumHwEvents; ++i) {
    EXPECT_NE(text.find(machine::hw_event_info(static_cast<HwEvent>(i)).name),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// End-to-end collection on a DSL program

class CollectorEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mod = testfix::make_chase_module(3000, 6, 8192);
    image_ = new sym::Image(scc::compile(*mod));
  }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }
  static sym::Image* image_;
};

sym::Image* CollectorEndToEnd::image_ = nullptr;

TEST_F(CollectorEndToEnd, RecordsEventsAndRunsToCompletion) {
  auto ex = testfix::quick_collect(*image_, "+dcrm,97", "on");
  EXPECT_GT(ex.events.size(), 50u);
  EXPECT_GT(ex.total_instructions, 100000u);
  EXPECT_FALSE(ex.log.empty());
  EXPECT_EQ(ex.truth.size(),
            static_cast<size_t>(std::count_if(ex.events.begin(), ex.events.end(),
                                              [](const auto& e) {
                                                return e.pic != machine::kClockPic;
                                              })));
  // Clock samples present too.
  bool any_clock = false;
  for (const auto& e : ex.events) any_clock |= e.pic == machine::kClockPic;
  EXPECT_TRUE(any_clock);
}

TEST_F(CollectorEndToEnd, BatchExportStreamsEveryEventExactlyOnce) {
  // The live-streaming hook (dsprof_send's path into dsprofd): batches handed
  // to batch_export during the run, concatenated, must equal the experiment's
  // final event store field for field — nothing duplicated, nothing missed.
  collect::CollectOptions opt;
  opt.hw = "+dcrm,97";
  opt.clock = "on";
  opt.batch_export_events = 32;
  experiment::EventStore seen;
  size_t batches = 0, last_flags = 0;
  opt.batch_export = [&](const experiment::EventStore& b, bool last) {
    ++batches;
    if (last) {
      ++last_flags;
    } else {
      // Non-final batches fire exactly at the threshold.
      EXPECT_EQ(b.size(), opt.batch_export_events);
    }
    seen.append_store(b);
  };
  collect::Collector c(*image_, opt);
  auto ex = c.run();

  EXPECT_EQ(last_flags, 1u) << "the final flush fires exactly once";
  EXPECT_GT(batches, 2u) << "threshold of 32 must split this run";
  ASSERT_EQ(seen.size(), ex.events.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    const auto e = ex.events[i];
    const auto s = seen[i];
    ASSERT_EQ(s.seq, e.seq) << "event " << i;
    EXPECT_EQ(s.pic, e.pic);
    EXPECT_EQ(s.event, e.event);
    EXPECT_EQ(s.weight, e.weight);
    EXPECT_EQ(s.delivered_pc, e.delivered_pc);
    EXPECT_EQ(s.has_candidate, e.has_candidate);
    EXPECT_EQ(s.candidate_pc, e.candidate_pc);
    EXPECT_EQ(s.has_ea, e.has_ea);
    EXPECT_EQ(s.ea, e.ea);
    EXPECT_TRUE(s.callstack == e.callstack.to_vector());
  }
}

TEST_F(CollectorEndToEnd, BacktrackingFindsTriggersWithGroundTruthAccuracy) {
  auto ex = testfix::quick_collect(*image_, "+dcrm,89");
  std::map<u64, machine::TruthRecord> truth;
  for (const auto& t : ex.truth) truth[t.seq] = t;
  const sym::SymbolTable& st = image_->symtab;

  size_t hw_events = 0, with_candidate = 0, exact = 0, same_object = 0;
  size_t ea_exact = 0, ea_known = 0, ea_checked = 0;
  for (const auto& e : ex.events) {
    if (e.pic == machine::kClockPic) continue;
    ++hw_events;
    if (!e.has_candidate) continue;
    ++with_candidate;
    const auto& t = truth.at(e.seq);
    if (e.candidate_pc == t.trigger_pc) ++exact;
    // Object-level accuracy: when candidate and trigger differ, does the
    // candidate still reference the same data aggregate? (This is what the
    // data-space views depend on.)
    const sym::MemRef* cand_ref = st.memref_for(e.candidate_pc);
    const sym::MemRef* true_ref = st.memref_for(t.trigger_pc);
    if (cand_ref && true_ref && cand_ref->kind == true_ref->kind &&
        cand_ref->aggregate == true_ref->aggregate) {
      ++same_object;
    }
    if (e.has_ea) {
      ++ea_known;
      // The reported EA is the *candidate's* address; it is verifiable
      // against ground truth only when the candidate is the true trigger
      // (otherwise it is the paper's "putative effective address").
      if (e.candidate_pc == t.trigger_pc) {
        ++ea_checked;
        if (t.ea_valid && e.ea == t.ea) ++ea_exact;
      }
    }
  }
  ASSERT_GT(hw_events, 50u);
  // A candidate is nearly always found; in a tight loop (iteration shorter
  // than worst-case skid) it may be a neighbouring memory op, but it almost
  // always names the right data object.
  EXPECT_GT(with_candidate, hw_events * 8 / 10);
  EXPECT_GT(exact, with_candidate / 4);
  EXPECT_GT(same_object, with_candidate * 6 / 10);
  // When the candidate is the true trigger, the recomputed effective address
  // must never be wrong — the collector detects clobbered address registers
  // rather than reporting a bad address.
  EXPECT_EQ(ea_exact, ea_checked);
  EXPECT_GT(ea_known, hw_events / 5);
}

TEST_F(CollectorEndToEnd, DtlbBacktrackingIsPerfect) {
  // Shrink the DTLB so the list + array working set thrashes it.
  machine::CpuConfig cfg;
  cfg.hierarchy.dtlb = {8, 2, 8 * 1024};
  auto ex = testfix::quick_collect(*image_, "+dtlbm,7", "off", cfg);
  std::map<u64, machine::TruthRecord> truth;
  for (const auto& t : ex.truth) truth[t.seq] = t;
  size_t n = 0;
  for (const auto& e : ex.events) {
    if (e.pic == machine::kClockPic) continue;
    ++n;
    ASSERT_TRUE(e.has_candidate);
    EXPECT_EQ(e.candidate_pc, truth.at(e.seq).trigger_pc);
    ASSERT_TRUE(e.has_ea);
    EXPECT_EQ(e.ea, truth.at(e.seq).ea);
  }
  EXPECT_GT(n, 10u);
}

TEST_F(CollectorEndToEnd, NoBacktrackWithoutPlus) {
  auto ex = testfix::quick_collect(*image_, "dcrm,89");
  for (const auto& e : ex.events) {
    if (e.pic == machine::kClockPic) continue;
    EXPECT_FALSE(e.has_candidate);
    EXPECT_FALSE(e.has_ea);
  }
}

TEST_F(CollectorEndToEnd, AllocationLogCaptured) {
  auto ex = testfix::quick_collect(*image_, "+dcrm,997");
  // One node array + one long array.
  EXPECT_EQ(ex.allocations.size(), 2u);
  for (const auto& a : ex.allocations) {
    EXPECT_GE(a.addr, mem::kHeapBase);
    EXPECT_GT(a.size, 0u);
    EXPECT_NE(a.site_pc, 0u);  // noted from inside the program's text
  }
}

TEST_F(CollectorEndToEnd, SampledTotalsEstimateTrueCounts) {
  auto ex = testfix::quick_collect(*image_, "+dcrm,89");
  collect::CollectOptions opt;
  opt.hw = "+dcrm,89";
  collect::Collector c(*image_, opt);
  auto ex2 = c.run();
  const u64 true_total = c.cpu().event_total(machine::HwEvent::DC_rd_miss);
  double est = 0;
  for (const auto& e : ex2.events) {
    if (e.pic != machine::kClockPic) est += static_cast<double>(e.weight);
  }
  ASSERT_GT(true_total, 1000u);
  EXPECT_NEAR(est / static_cast<double>(true_total), 1.0, 0.05);
}

TEST_F(CollectorEndToEnd, ExperimentSaveLoadRoundTrip) {
  auto ex = testfix::quick_collect(*image_, "+dcrm,997", "on");
  const std::string dir = ::testing::TempDir() + "/dsp_experiment_test";
  ex.save(dir);
  const experiment::Experiment back = experiment::Experiment::load(dir);
  EXPECT_EQ(back.events.size(), ex.events.size());
  EXPECT_EQ(back.counters.size(), ex.counters.size());
  EXPECT_EQ(back.total_cycles, ex.total_cycles);
  EXPECT_EQ(back.allocations, ex.allocations);
  EXPECT_EQ(back.truth.size(), ex.truth.size());
  EXPECT_EQ(back.image.text_words, ex.image.text_words);
  EXPECT_EQ(back.log, ex.log);
  for (size_t i = 0; i < std::min<size_t>(ex.events.size(), 20); ++i) {
    EXPECT_EQ(back.events[i].delivered_pc, ex.events[i].delivered_pc);
    EXPECT_EQ(back.events[i].candidate_pc, ex.events[i].candidate_pc);
    EXPECT_EQ(back.events[i].ea, ex.events[i].ea);
  }
}

TEST_F(CollectorEndToEnd, DeterministicAcrossRuns) {
  auto a = testfix::quick_collect(*image_, "+ecrm,211");
  auto b = testfix::quick_collect(*image_, "+ecrm,211");
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].delivered_pc, b.events[i].delivered_pc);
    EXPECT_EQ(a.events[i].candidate_pc, b.events[i].candidate_pc);
  }
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

}  // namespace
}  // namespace dsprof::collect
