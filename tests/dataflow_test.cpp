// Dataflow framework tests (src/sa/dataflow.hpp, src/sa/loops.hpp):
//   * per-instruction register transfer facts mirror the backtracking
//     clobber-scan written-register rule,
//   * worklist solver instantiations (liveness, reaching definitions) on
//     hand-assembled images, including the annulled-delay-slot may-def rule,
//   * dominator tree, natural-loop detection, induction-variable stride
//     inference, and the irreducible-CFG fallback,
//   * attribution-coverage classification on hand images and compiled
//     fixtures, and the conservativeness theorem end to end: every PC the
//     machine issues is a static delivery point, and every dynamically
//     attributed candidate is classified Attributable.
#include <gtest/gtest.h>

#include "collect/collector.hpp"
#include "dsl_fixtures.hpp"
#include "machine/cpu.hpp"
#include "mcfsim/mcfsim.hpp"
#include "sa/dataflow.hpp"
#include "sa/loops.hpp"
#include "scc/compile.hpp"

namespace dsprof::sa {
namespace {

using machine::TriggerKind;

sym::Image make_image(const std::vector<isa::Instr>& code) {
  sym::Image img;
  for (const auto& ins : code) img.text_words.push_back(isa::encode(ins));
  img.entry = img.text_base;
  img.symtab.set_hwcprof(false);
  img.symtab.set_has_branch_targets(false);
  return img;
}

struct Analyses {
  Cfg cfg;
  ProgramFacts pf;
};

Analyses analyze(const sym::Image& img) {
  Analyses a{Cfg::build(img), {}};
  a.pf = ProgramFacts::build(img, a.cfg);
  return a;
}

u32 block_index_at(const Cfg& cfg, u64 pc) {
  const BasicBlock* blk = cfg.block_at(pc);
  EXPECT_NE(blk, nullptr);
  return static_cast<u32>(blk - cfg.blocks().data());
}

// ---------------------------------------------------------------------------
// Register transfer facts

TEST(RegFacts, MirrorsClobberScanWrittenRegisterRule) {
  using namespace isa;
  // Loads and ALU-type ops (SETHI included) write rd.
  EXPECT_EQ(reg_facts(load_ri(Op::LDX, O1, L1, 8)).def, O1);
  EXPECT_EQ(reg_facts(alu_rr(Op::ADD, L3, L1, L2)).def, L3);
  EXPECT_EQ(reg_facts(sethi(L4, 0x1234)).def, L4);
  // Stores, branches, prefetches, HCALL write nothing.
  EXPECT_EQ(reg_facts(store_ri(Op::STX, O1, L1, 8)).def, kNoReg);
  EXPECT_EQ(reg_facts(branch(Cond::E, 16)).def, kNoReg);
  EXPECT_EQ(reg_facts(prefetch_ri(L1, 64)).def, kNoReg);
  EXPECT_EQ(reg_facts(hcall(0)).def, kNoReg);
  // CALL writes the link register; writes to %g0 are dropped.
  EXPECT_EQ(reg_facts(call(64)).def, kLink);
  EXPECT_EQ(reg_facts(alu_ri(Op::ADD, G0, L1, 1)).def, kNoReg);

  // Uses: %g0 never appears; stores read base and data; HCALL reads %o0-%o5.
  EXPECT_EQ(reg_facts(load_ri(Op::LDX, O1, L1, 8)).uses, u32{1} << L1);
  EXPECT_EQ(reg_facts(store_ri(Op::STX, O1, L1, 8)).uses, (u32{1} << L1) | (u32{1} << O1));
  EXPECT_EQ(reg_facts(alu_rr(Op::XOR, L3, L1, L2)).uses, (u32{1} << L1) | (u32{1} << L2));
  EXPECT_EQ(reg_facts(sethi(L4, 0x1234)).uses, 0u);
  u32 hcall_uses = 0;
  for (unsigned r = O0; r <= O5; ++r) hcall_uses |= u32{1} << r;
  EXPECT_EQ(reg_facts(hcall(7)).uses, hcall_uses);
  EXPECT_EQ(reg_facts(mov_ri(L1, 5)).uses, 0u);  // or L1, %g0, 5
}

TEST(RegFacts, IdentityMovesAreRecognized) {
  using namespace isa;
  EXPECT_TRUE(is_identity_move(mov_rr(L1, L1)));            // or L1, %g0, L1
  EXPECT_TRUE(is_identity_move(alu_ri(Op::ADD, L1, L1, 0)));
  EXPECT_TRUE(is_identity_move(alu_ri(Op::OR, L1, L1, 0)));
  EXPECT_FALSE(is_identity_move(mov_rr(L1, L2)));
  EXPECT_FALSE(is_identity_move(mov_ri(L1, 0)));            // writes zero, not L1
  EXPECT_FALSE(is_identity_move(alu_ri(Op::ADD, L1, L1, 4)));
  EXPECT_FALSE(is_identity_move(load_ri(Op::LDX, L1, L1, 0)));
}

// ---------------------------------------------------------------------------
// Program facts

TEST(ProgramFacts, RpoCoversEveryBlockOnceAndAnnulSlotsAreFlagged) {
  using namespace isa;
  const sym::Image img = make_image({
      mov_ri(L1, 5),                         // w0
      branch(Cond::E, 16, /*annul=*/true),   // w1: be,a w5
      mov_ri(L1, 7),                         // w2: annulled slot
      nop(),                                 // w3
      nop(),                                 // w4
      store_ri(Op::STX, L1, L2, 0),          // w5: branch target
      hcall(0),                              // w6
      nop(),                                 // w7
  });
  const Analyses a = analyze(img);
  const ProgramFacts& pf = a.pf;

  ASSERT_EQ(pf.num_blocks(), a.cfg.blocks().size());
  ASSERT_EQ(pf.rpo.size(), pf.num_blocks());
  std::vector<bool> seen(pf.num_blocks(), false);
  for (size_t i = 0; i < pf.rpo.size(); ++i) {
    const u32 b = pf.rpo[i];
    ASSERT_LT(b, pf.num_blocks());
    EXPECT_FALSE(seen[b]) << "block appears twice in RPO";
    seen[b] = true;
    EXPECT_EQ(pf.rpo_index[b], static_cast<u32>(i));
  }

  // preds mirror succ.
  for (u32 b = 0; b < pf.num_blocks(); ++b) {
    for (const u32 s : a.cfg.blocks()[b].succ) {
      const auto& p = pf.preds[s];
      EXPECT_NE(std::find(p.begin(), p.end(), b), p.end());
    }
  }

  // Only the slot of the annulling branch is a may-def.
  EXPECT_TRUE(pf.may_annul(2));
  for (const size_t w : {size_t{0}, size_t{1}, size_t{3}, size_t{5}}) {
    EXPECT_FALSE(pf.may_annul(w)) << "word " << w;
  }
}

// ---------------------------------------------------------------------------
// Liveness

TEST(Liveness, OverwrittenWriteIsDeadExactlyOnce) {
  using namespace isa;
  const sym::Image img = make_image({
      mov_ri(L1, 5),                 // w0: dead — overwritten at w2 on every path
      mov_ri(L2, 0x100),             // w1: live — store base
      mov_ri(L1, 7),                 // w2: live — store data
      store_ri(Op::STX, L1, L2, 0),  // w3
      hcall(0),                      // w4
      nop(),                         // w5
  });
  const Analyses a = analyze(img);
  const Liveness lv = Liveness::build(a.pf);
  ASSERT_EQ(lv.dead_writes().size(), 1u);
  EXPECT_EQ(lv.dead_writes()[0].pc, img.text_base);
  EXPECT_EQ(lv.dead_writes()[0].reg, L1);
  EXPECT_GT(lv.solver_iterations(), 0u);
}

TEST(Liveness, AnnulledDelaySlotDefIsMayDefNotAKill) {
  using namespace isa;
  // On the untaken path the annulled slot never executes, so the w0 value of
  // %l1 reaches the store: w0 must NOT be reported dead even though the slot
  // textually overwrites it before the only reader.
  const sym::Image img = make_image({
      mov_ri(L1, 5),                         // w0
      branch(Cond::E, 16, /*annul=*/true),   // w1: be,a w5
      mov_ri(L1, 7),                         // w2: slot — executes only if taken
      nop(),                                 // w3: untaken path
      nop(),                                 // w4
      store_ri(Op::STX, L1, L2, 0),          // w5: reads %l1
      hcall(0),                              // w6
      nop(),                                 // w7
  });
  const Analyses a = analyze(img);
  const Liveness lv = Liveness::build(a.pf);
  EXPECT_TRUE(lv.dead_writes().empty());
}

TEST(Liveness, CallBoundaryKeepsEverythingLive) {
  using namespace isa;
  // The write at w0 is only "dead" if we assume the callee reads nothing —
  // the conservative boundary must keep it live across the call.
  const sym::Image img = make_image({
      mov_ri(L5, 9),   // w0: must stay live — callee may read anything
      call(16),        // w1: call w5
      nop(),           // w2: slot
      hcall(0),        // w3
      nop(),           // w4
      ret(),           // w5: callee
      nop(),           // w6: slot
  });
  const Analyses a = analyze(img);
  const Liveness lv = Liveness::build(a.pf);
  EXPECT_TRUE(lv.dead_writes().empty());
  const u32 entry_blk = block_index_at(a.cfg, img.text_base);
  EXPECT_NE(lv.live_out(entry_blk) & (u32{1} << L5), 0u);
}

// ---------------------------------------------------------------------------
// Reaching definitions

TEST(ReachingDefs, KillsOnStraightLineJoinsAcrossAnnulledSlot) {
  using namespace isa;
  const sym::Image img = make_image({
      mov_ri(L1, 5),                         // w0: def A
      branch(Cond::E, 16, /*annul=*/true),   // w1
      mov_ri(L1, 7),                         // w2: def B (may-annul: no kill)
      nop(),                                 // w3
      nop(),                                 // w4
      store_ri(Op::STX, L1, L2, 0),          // w5: both defs may reach here
      hcall(0),                              // w6
      nop(),                                 // w7
  });
  const Analyses a = analyze(img);
  const ReachingDefs rd = ReachingDefs::build(a.pf);

  const auto reach_store = rd.defs_reaching(img.text_base + 4 * 5, L1);
  EXPECT_EQ(reach_store, (std::vector<u64>{img.text_base, img.text_base + 4 * 2}));

  // A straight-line redefinition kills: only w2's def reaches w3... er, w5 via
  // the non-annulled layout below.
  const sym::Image straight = make_image({
      mov_ri(L1, 5),                 // def A — killed
      mov_ri(L1, 7),                 // def B
      store_ri(Op::STX, L1, L2, 0),  // only B reaches
      hcall(0),
      nop(),
  });
  const Analyses sa2 = analyze(straight);
  const ReachingDefs rd2 = ReachingDefs::build(sa2.pf);
  EXPECT_EQ(rd2.defs_reaching(straight.text_base + 4 * 2, L1),
            (std::vector<u64>{straight.text_base + 4}));
  // Def sites enumerate every register-writing instruction.
  EXPECT_EQ(rd2.def_sites().size(), 2u);
}

// ---------------------------------------------------------------------------
// Dominators, loops, strides

TEST(Loops, CountedLoopWithInductionVariableStride) {
  using namespace isa;
  const sym::Image img = make_image({
      mov_ri(L1, 0),                  // w0: i = 0
      mov_ri(L2, 0x1000),             // w1: p = base
      load_ri(Op::LDX, L3, L2, 0),    // w2: loop: ldx [p], t
      alu_ri(Op::ADD, L2, L2, 24),    // w3: p += 24
      alu_ri(Op::ADD, L1, L1, 1),     // w4: i += 1
      cmp_ri(L1, 10),                 // w5
      branch(Cond::NE, -16),          // w6: bne w2
      nop(),                          // w7: slot
      hcall(0),                       // w8
      nop(),                          // w9
  });
  const Analyses a = analyze(img);
  const LoopAnalysis la = LoopAnalysis::build(a.pf, img);

  EXPECT_FALSE(la.irreducible());
  ASSERT_EQ(la.loops().size(), 1u);
  const Loop& loop = la.loops()[0];
  EXPECT_EQ(loop.head_pc, img.text_base + 4 * 2);
  EXPECT_EQ(loop.depth, 1u);
  ASSERT_EQ(loop.mem_refs.size(), 1u);
  EXPECT_EQ(loop.mem_refs[0].pc, img.text_base + 4 * 2);
  EXPECT_TRUE(loop.mem_refs[0].is_load);
  ASSERT_TRUE(loop.mem_refs[0].has_stride);
  EXPECT_EQ(loop.mem_refs[0].stride, 24);

  // Dominator facts: entry -> head -> exit is a chain.
  const u32 entry_blk = block_index_at(a.cfg, img.text_base);
  const u32 head_blk = block_index_at(a.cfg, loop.head_pc);
  const u32 exit_blk = block_index_at(a.cfg, img.text_base + 4 * 8);
  EXPECT_EQ(loop.head_block, head_blk);
  EXPECT_TRUE(la.dom().dominates(entry_blk, head_blk));
  EXPECT_TRUE(la.dom().dominates(head_blk, exit_blk));
  EXPECT_FALSE(la.dom().dominates(exit_blk, head_blk));
  EXPECT_EQ(la.dom().idom(head_blk), entry_blk);
}

TEST(Loops, PointerChaseLoopHonestlyReportsNoStride) {
  using namespace isa;
  const sym::Image img = make_image({
      mov_ri(L2, 0),                 // w0: cur = head
      load_ri(Op::LDX, L2, L2, 8),   // w1: loop: cur = cur->next
      cmp_ri(L2, 0),                 // w2
      branch(Cond::NE, -8),          // w3: bne w1
      nop(),                         // w4: slot
      hcall(0),                      // w5
      nop(),                         // w6
  });
  const Analyses a = analyze(img);
  const LoopAnalysis la = LoopAnalysis::build(a.pf, img);
  ASSERT_EQ(la.loops().size(), 1u);
  ASSERT_EQ(la.loops()[0].mem_refs.size(), 1u);
  EXPECT_FALSE(la.loops()[0].mem_refs[0].has_stride)
      << "a base register loaded from memory has no static stride";
}

TEST(Loops, IrreducibleRegionIsSkippedAndReported) {
  using namespace isa;
  // entry branches into a two-block cycle at both points: neither cycle
  // block dominates the other, so no retreating edge is a back edge.
  const sym::Image img = make_image({
      branch(Cond::E, 24),    // w0: be B (w6); fall through to A
      nop(),                  // w1: slot
      nop(),                  // w2: A
      branch(Cond::A, 12),    // w3: ba B (w6)
      nop(),                  // w4: slot
      nop(),                  // w5: (unreachable)
      branch(Cond::NE, -16),  // w6: B: bne A (w2)
      nop(),                  // w7: slot
      hcall(0),               // w8
      nop(),                  // w9
  });
  const Analyses a = analyze(img);
  const LoopAnalysis la = LoopAnalysis::build(a.pf, img);
  EXPECT_TRUE(la.irreducible());
  EXPECT_TRUE(la.loops().empty());
}

TEST(Loops, AffineResolverFollowsMovAddShiftChains) {
  using namespace isa;
  // w3 sees  %l3 = (%l1 << 3) + 16  anchored at block entry.
  const sym::Image img = make_image({
      alu_ri(Op::SLL, L3, L1, 3),    // w0: t = i << 3
      alu_ri(Op::ADD, L3, L3, 16),   // w1: t += 16
      mov_rr(L4, L3),                // w2: u = t
      store_ri(Op::STX, L4, L4, 0),  // w3
      hcall(0),                      // w4
      nop(),                         // w5
  });
  const Analyses a = analyze(img);
  const auto v = LoopAnalysis::resolve_affine(a.pf, L4, 3);
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->terms.size(), 1u);
  EXPECT_EQ(v->terms[0].reg, L1);
  EXPECT_EQ(v->terms[0].mult, 8);
  EXPECT_EQ(v->offset, 16);

  // A load in the chain gives up.
  const sym::Image opaque = make_image({
      load_ri(Op::LDX, L3, L1, 0),  // w0
      alu_ri(Op::ADD, L3, L3, 16),  // w1
      hcall(0),                     // w2
      nop(),                        // w3
  });
  const Analyses b = analyze(opaque);
  EXPECT_FALSE(LoopAnalysis::resolve_affine(b.pf, L3, 2).has_value());
}

TEST(Loops, CompiledChaseImageHasStridedSweepAndUnstridedChase) {
  const auto m = testfix::make_chase_module(500, 2, 512);
  const sym::Image img = scc::compile(*m);
  const Analyses a = analyze(img);
  const LoopAnalysis la = LoopAnalysis::build(a.pf, img);
  EXPECT_FALSE(la.irreducible());
  ASSERT_GT(la.loops().size(), 2u);  // walk, sweep, init x2, main iter loop
  size_t strided = 0, unstrided = 0;
  for (const Loop& l : la.loops()) {
    EXPECT_FALSE(l.function.empty());
    for (const LoopMemRef& r : l.mem_refs) (r.has_stride ? strided : unstrided) += 1;
  }
  EXPECT_GT(strided, 0u) << "the array sweep has a constant stride";
  EXPECT_GT(unstrided, 0u) << "the pointer chase must not fake a stride";
}

// ---------------------------------------------------------------------------
// Attribution coverage

TEST(Coverage, ClassifiesPlainAndSelfClobberingLoads) {
  using namespace isa;
  const sym::Image img = make_image({
      load_ri(Op::LDX, O1, L1, 8),  // w0: EA regs intact at every delivery
      nop(),                        // w1
      load_ri(Op::LDX, L2, L2, 8),  // w2: destroys its own base
      nop(),                        // w3
      hcall(0),                     // w4
      nop(),                        // w5
  });
  const Cfg cfg = Cfg::build(img);
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);

  const MemOpFact* plain = cov.find(img.text_base);
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->reachable);
  EXPECT_EQ(plain->cls, EaClass::Attributable);
  EXPECT_GT(plain->ea_static_deliveries, 0u);

  const MemOpFact* clobbered = cov.find(img.text_base + 4 * 2);
  ASSERT_NE(clobbered, nullptr);
  EXPECT_TRUE(clobbered->reachable);
  EXPECT_EQ(clobbered->cls, EaClass::Clobbered);
  EXPECT_GT(clobbered->resolving_deliveries, 0u);
  EXPECT_EQ(clobbered->ea_static_deliveries, 0u);

  EXPECT_EQ(cov.reachable_mem_ops(), 2u);
  EXPECT_EQ(cov.attributable(), 1u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 0.5);
  EXPECT_EQ(cov.find(img.text_base + 4), nullptr);  // nop is not a mem op

  // Every issued PC is a delivery point on this straight-line image (the
  // halt flush lands on the word after the exit hcall, never past the end);
  // off-text PCs are not.
  for (size_t w = 0; w < img.text_words.size(); ++w) {
    EXPECT_TRUE(cov.is_delivery_point(img.text_base + 4 * w)) << "word " << w;
  }
  EXPECT_FALSE(cov.is_delivery_point(img.text_base - 4));
  EXPECT_FALSE(cov.is_delivery_point(img.text_base + 2));
}

TEST(Coverage, UnreachableMemOpsAreExcludedFromTheFraction) {
  using namespace isa;
  const sym::Image img = make_image({
      branch(Cond::A, 16, /*annul=*/true),  // w0: ba,a w4 — w1..w3 dead
      nop(),                                // w1: annulled slot
      load_ri(Op::LDX, O1, L1, 8),          // w2: unreachable load
      nop(),                                // w3
      hcall(0),                             // w4
      nop(),                                // w5
  });
  const Cfg cfg = Cfg::build(img);
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);

  const MemOpFact* dead = cov.find(img.text_base + 4 * 2);
  ASSERT_NE(dead, nullptr);
  EXPECT_FALSE(dead->reachable);
  EXPECT_EQ(cov.reachable_mem_ops(), 0u);
  EXPECT_EQ(cov.attributable(), 0u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 1.0);  // nothing reachable to attribute
}

TEST(Coverage, ClobberDepthMeasuresSkidHeadroom) {
  using namespace isa;
  const sym::Image img = make_image({
      load_ri(Op::LDX, O1, L1, 8),  // w0: EA base %l1 ...
      mov_ri(L1, 0),                // w1: ... clobbered at distance 1
      load_ri(Op::LDX, O2, L2, 8),  // w2: %l2 never rewritten
      nop(),                        // w3
      hcall(0),                     // w4
      nop(),                        // w5
  });
  const Cfg cfg = Cfg::build(img);
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);
  const MemOpFact* tight = cov.find(img.text_base);
  ASSERT_NE(tight, nullptr);
  EXPECT_EQ(tight->cls, EaClass::Attributable);  // the w1 delivery still resolves
  EXPECT_EQ(tight->clobber_depth, 1u);
  const MemOpFact* roomy = cov.find(img.text_base + 4 * 2);
  ASSERT_NE(roomy, nullptr);
  EXPECT_EQ(roomy->clobber_depth, 0u);
}

TEST(Coverage, CompiledImagesClearTheNinetyPercentFloor) {
  for (const sym::Image& img :
       {scc::compile(*testfix::make_chase_module(500, 2, 512)), mcfsim::build_mcf_image()}) {
    const Cfg cfg = Cfg::build(img);
    const BacktrackTable table = BacktrackTable::build(img, 16);
    const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);
    EXPECT_GE(cov.fraction(), 0.90);
    EXPECT_GT(cov.reachable_mem_ops(), 0u);

    // Per-function rows are consistent with the whole-image totals.
    size_t reach = 0, attr = 0;
    for (const FunctionCoverage& f : cov.by_function(img)) {
      EXPECT_LE(f.attributable, f.reachable_mem_ops);
      EXPECT_LE(f.reachable_mem_ops, f.mem_ops);
      EXPECT_GE(f.fraction, 0.0);
      EXPECT_LE(f.fraction, 1.0);
      reach += f.reachable_mem_ops;
      attr += f.attributable;
    }
    EXPECT_EQ(reach, cov.reachable_mem_ops());
    EXPECT_EQ(attr, cov.attributable());
  }
}

// ---------------------------------------------------------------------------
// Conservativeness: the static delivery set and classification must cover
// everything the dynamic pipeline can produce.

TEST(Conservativeness, EveryIssuedPcIsAStaticDeliveryPoint) {
  const sym::Image img = scc::compile(*testfix::make_chase_module(200, 1, 256));
  const Cfg cfg = Cfg::build(img);
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);

  mem::Memory memory;
  img.load_into(memory);
  machine::Cpu cpu(memory, machine::CpuConfig{});
  cpu.set_truth_log_enabled(false);
  cpu.set_pc(img.entry);
  // Single-step and check the PC the machine is about to issue — the value a
  // counter delivery would report — before every instruction.
  for (size_t steps = 0; steps < 2'000'000; ++steps) {
    ASSERT_TRUE(cov.is_delivery_point(cpu.pc()))
        << "issued pc " << std::hex << cpu.pc() << " not in the delivery set";
    if (cpu.run(1).halted) break;
  }
  EXPECT_TRUE(cov.is_delivery_point(cpu.pc())) << "halt flush point";
}

TEST(Conservativeness, DynamicallyAttributedCandidatesAreClassifiedAttributable) {
  const sym::Image img = scc::compile(*testfix::make_chase_module(2000, 3, 4096));
  const Cfg cfg = Cfg::build(img);
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);

  machine::CpuConfig small;
  small.hierarchy.dcache = {4 * 1024, 4, 32, false};
  small.hierarchy.ecache = {32 * 1024, 2, 512, true};
  small.hierarchy.dtlb = {4, 2, 8 * 1024};
  size_t attributed = 0;
  for (const char* spec : {"+dcrm,97", "+ecref,193", "+dtlbm,13"}) {
    const auto x = testfix::quick_collect(img, spec, "off", small);
    ASSERT_GT(x.events.size(), 0u) << spec;
    for (size_t i = 0; i < x.events.size(); ++i) {
      const experiment::EventView e = x.events[i];
      EXPECT_TRUE(cov.is_delivery_point(e.delivered_pc))
          << spec << " delivered " << std::hex << e.delivered_pc;
      if (!e.has_candidate) continue;
      const MemOpFact* op = cov.find(e.candidate_pc);
      ASSERT_NE(op, nullptr) << spec << " candidate " << std::hex << e.candidate_pc;
      EXPECT_NE(op->cls, EaClass::Unknown)
          << spec << " candidate " << std::hex << e.candidate_pc;
      if (e.has_ea) {
        ++attributed;
        EXPECT_EQ(op->cls, EaClass::Attributable)
            << spec << " candidate " << std::hex << e.candidate_pc;
      }
    }
  }
  EXPECT_GT(attributed, 0u) << "the property must not hold vacuously";
}

TEST(Coverage, EaClassNames) {
  EXPECT_STREQ(ea_class_name(EaClass::Attributable), "attributable");
  EXPECT_STREQ(ea_class_name(EaClass::Clobbered), "clobbered");
  EXPECT_STREQ(ea_class_name(EaClass::Unknown), "unknown");
}

}  // namespace
}  // namespace dsprof::sa
