// Shared DSL test programs used by the collector/analyzer/integration tests.
#pragma once

#include <memory>

#include "collect/collector.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

namespace dsprof::testfix {

/// A memory-heavy program with a recognizable data-space profile: builds an
/// array of `pair` nodes linked in a pseudo-random permutation (stride 1997,
/// coprime with the node count) plus a `long` array, then repeatedly walks
/// the permutation (pointer chase over struct members, cache-hostile) and
/// sweeps the array (scalar stream). Traces the checksum so semantic
/// equality can be asserted.
inline std::unique_ptr<scc::Module> make_chase_module(i64 n_nodes = 2000, i64 iters = 10,
                                                      i64 array_len = 4096) {
  using namespace scc;
  DSP_CHECK(n_nodes % 1997 != 0, "node count must not be a multiple of the link stride");
  auto m = std::make_unique<Module>();
  StructDef* pair = m->add_struct("pair");
  pair->field("key", Type::i64()).field("payload", Type::i64("val_t")).field("next",
                                                                             Type::ptr(pair));
  Function* mal = add_runtime(*m);

  Function* walk = m->add_function("walk_list");
  {
    FunctionBuilder fb(*m, *walk);
    auto head = fb.param("head", Type::ptr(pair));
    auto steps = fb.param("steps", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    auto cur = fb.local("cur", Type::ptr(pair));
    auto j = fb.local("j", Type::i64());
    fb.set(sum, 0);
    fb.set(cur, head);
    fb.set(j, 0);
    fb.while_(j < steps, [&] {
      fb.set(sum, sum + cur["payload"]);
      fb.set(cur, cur["next"]);
      fb.set(j, j + 1);
    });
    fb.ret(sum);
  }

  Function* sweep = m->add_function("sweep_array");
  {
    FunctionBuilder fb(*m, *sweep);
    auto arr = fb.param("arr", Type::ptr_i64());
    auto len = fb.param("len", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < len, [&] {
      fb.set(sum, sum + arr.idx(i));
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }

  Function* main = m->add_function("main");
  {
    FunctionBuilder fb(*m, *main);
    auto nodes = fb.local("nodes", Type::ptr(pair));
    auto cur = fb.local("cur", Type::ptr(pair));
    auto arr = fb.local("arr", Type::ptr_i64());
    auto i = fb.local("i", Type::i64());
    auto total = fb.local("total", Type::i64());
    fb.set(nodes, cast(fb.call(mal, {Val(n_nodes * static_cast<i64>(pair->size()))}),
                       Type::ptr(pair)));
    fb.set(i, 0);
    fb.while_(i < n_nodes, [&] {
      fb.set(cur, nodes + i);
      fb.set(cur["key"], i);
      fb.set(cur["payload"], i * 2 + 1);
      fb.set(cur["next"], nodes + (i + 1997) % n_nodes);
      fb.set(i, i + 1);
    });
    fb.set(arr, cast(fb.call(mal, {Val(array_len * 8)}), Type::ptr_i64()));
    fb.set(i, 0);
    fb.while_(i < array_len, [&] {
      fb.set(arr.idx(i), i & 1023);
      fb.set(i, i + 1);
    });
    fb.set(total, 0);
    fb.set(i, 0);
    fb.while_(i < iters, [&] {
      fb.set(total, total + fb.call(walk, {nodes, Val(n_nodes)}));
      fb.set(total, total + fb.call(sweep, {arr, Val(array_len)}));
      fb.set(i, i + 1);
    });
    fb.trace(total);
    fb.ret(total & 0x7F);
  }
  return m;
}

/// Collect an experiment from an image with the given counter spec.
inline experiment::Experiment quick_collect(const sym::Image& img, const std::string& hw,
                                            const std::string& clock = "off",
                                            machine::CpuConfig cpu = {}) {
  collect::CollectOptions opt;
  opt.hw = hw;
  opt.clock = clock;
  opt.cpu = cpu;
  collect::Collector c(img, opt);
  return c.run();
}

}  // namespace dsprof::testfix
