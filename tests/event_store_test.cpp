// Columnar EventStore: callstack-arena interning, save/load round trips in
// all three on-disk layouts (including the zero-copy mmap'd DSPG path),
// and bit-identical determinism of the reduction engines — radix, sharded,
// and the seed-equivalent Baseline — across thread counts, random stores,
// and the mapped-vs-streamed loaders.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <random>

#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"
#include "experiment/experiment.hpp"
#include "scc/compile.hpp"
#include "support/bytestream.hpp"
#include "support/mmap_file.hpp"

namespace dsprof::experiment {
namespace {

using machine::HwEvent;

EventStore make_store(const std::vector<std::vector<u64>>& stacks) {
  EventStore s;
  u64 seq = 0;
  for (const auto& cs : stacks) {
    s.append(/*pic=*/0, HwEvent::EC_rd_miss, /*weight=*/1009, /*delivered_pc=*/0x1000 + seq,
             /*has_candidate=*/true, /*candidate_pc=*/0x0ff0 + seq, /*has_ea=*/true,
             /*ea=*/0x8000 + 8 * seq, cs.data(), cs.size(), seq);
    ++seq;
  }
  return s;
}

TEST(EventStoreInterning, IdenticalStacksShareOneArenaRange) {
  const std::vector<u64> hot = {0x100, 0x200, 0x300};
  EventStore s = make_store({hot, hot, hot, hot});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.unique_callstacks(), 1u);
  EXPECT_EQ(s.arena_words(), hot.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(s.callstack(i) == hot);
    // All four events address the very same arena words.
    EXPECT_EQ(s.callstack(i).ptr, s.callstack(0).ptr);
  }
}

TEST(EventStoreInterning, DistinctStacksGetDistinctRanges) {
  const std::vector<u64> a = {0x100, 0x200};
  const std::vector<u64> b = {0x100, 0x201};     // same length, different words
  const std::vector<u64> c = {0x100};            // prefix of a
  const std::vector<u64> d = {0x100, 0x200, 1};  // extension of a
  EventStore s = make_store({a, b, c, d, a, b});
  EXPECT_EQ(s.unique_callstacks(), 4u);
  EXPECT_EQ(s.arena_words(), a.size() + b.size() + c.size() + d.size());
  EXPECT_TRUE(s.callstack(0) == a);
  EXPECT_TRUE(s.callstack(1) == b);
  EXPECT_TRUE(s.callstack(2) == c);
  EXPECT_TRUE(s.callstack(3) == d);
  EXPECT_EQ(s.callstack(4).ptr, s.callstack(0).ptr);
  EXPECT_EQ(s.callstack(5).ptr, s.callstack(1).ptr);
}

TEST(EventStoreInterning, EmptyCallstacksCostNoArena) {
  EventStore s = make_store({{}, {0x1}, {}});
  EXPECT_EQ(s.unique_callstacks(), 2u);  // the empty stack plus {0x1}
  EXPECT_EQ(s.arena_words(), 1u);
  EXPECT_TRUE(s.callstack(0).empty());
  EXPECT_TRUE(s.callstack(2).empty());
}

TEST(EventStoreBulk, AppendRangePreservesEveryFieldAndReinterns) {
  const std::vector<u64> a = {0x100, 0x200};
  const std::vector<u64> b = {0x300};
  EventStore src = make_store({a, b, a, {}, b, a});

  EventStore dst;
  dst.append_range(src, 1, 5);  // b, a, {}, b
  ASSERT_EQ(dst.size(), 4u);
  for (size_t i = 0; i < dst.size(); ++i) {
    const EventView e = src[i + 1];
    const EventView d = dst[i];
    EXPECT_EQ(d.pic, e.pic);
    EXPECT_EQ(d.event, e.event);
    EXPECT_EQ(d.weight, e.weight);
    EXPECT_EQ(d.delivered_pc, e.delivered_pc);
    EXPECT_EQ(d.has_candidate, e.has_candidate);
    EXPECT_EQ(d.candidate_pc, e.candidate_pc);
    EXPECT_EQ(d.has_ea, e.has_ea);
    EXPECT_EQ(d.ea, e.ea);
    EXPECT_TRUE(d.callstack == e.callstack.to_vector());
    EXPECT_EQ(d.seq, e.seq);
  }
  // The destination arena is rebuilt by re-interning, not copied wholesale:
  // only the stacks that actually occur in the range are stored, once each.
  EXPECT_EQ(dst.unique_callstacks(), 3u);  // a, b, and the empty stack
  EXPECT_EQ(dst.arena_words(), a.size() + b.size());

  // append_store == append_range over the whole source.
  EventStore whole;
  whole.append_store(src);
  whole.append_store(src);
  ASSERT_EQ(whole.size(), 2 * src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(whole[i].seq, src[i].seq);
    EXPECT_EQ(whole[src.size() + i].delivered_pc, src[i].delivered_pc);
    EXPECT_TRUE(whole[src.size() + i].callstack == src[i].callstack.to_vector());
  }
  EXPECT_EQ(whole.unique_callstacks(), src.unique_callstacks());
  EXPECT_EQ(whole.arena_words(), src.arena_words());

  // Out-of-range and inverted ranges are rejected, as is appending from self.
  EXPECT_THROW(dst.append_range(src, 4, 3), Error);
  EXPECT_THROW(dst.append_range(src, 0, src.size() + 1), Error);
  EXPECT_THROW(dst.append_range(dst, 0, dst.size()), Error);
}

TEST(EventStore, ViewsMaterializeEveryField) {
  EventStore s;
  s.append(machine::kClockPic, HwEvent::Cycle_cnt, 900'001, 0xabc, false, 0, false, 0,
           nullptr, 0, 7);
  const std::vector<u64> cs = {0x42};
  s.append(1, HwEvent::DTLB_miss, 499, 0xdef, true, 0xdd0, true, 0xbeef, cs.data(),
           cs.size(), 8);
  const EventView v0 = s[0];
  EXPECT_EQ(v0.pic, machine::kClockPic);
  EXPECT_EQ(v0.event, HwEvent::Cycle_cnt);
  EXPECT_EQ(v0.weight, 900'001u);
  EXPECT_EQ(v0.delivered_pc, 0xabcu);
  EXPECT_FALSE(v0.has_candidate);
  EXPECT_FALSE(v0.has_ea);
  EXPECT_TRUE(v0.callstack.empty());
  EXPECT_EQ(v0.seq, 7u);
  const EventView v1 = s[1];
  EXPECT_EQ(v1.pic, 1u);
  EXPECT_EQ(v1.event, HwEvent::DTLB_miss);
  EXPECT_TRUE(v1.has_candidate);
  EXPECT_EQ(v1.candidate_pc, 0xdd0u);
  EXPECT_TRUE(v1.has_ea);
  EXPECT_EQ(v1.ea, 0xbeefu);
  EXPECT_TRUE(v1.callstack == cs);
  // Iteration yields the same views.
  size_t n = 0;
  for (const auto& e : s) {
    EXPECT_EQ(e.seq, 7u + n);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(EventStore, SerializeRoundTripPreservesEverything) {
  const std::vector<u64> a = {1, 2, 3}, b = {9};
  EventStore s = make_store({a, b, a, {}, b});
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  const EventStore back = EventStore::deserialize(r);
  ASSERT_EQ(back.size(), s.size());
  EXPECT_EQ(back.unique_callstacks(), s.unique_callstacks());
  EXPECT_EQ(back.arena_words(), s.arena_words());
  for (size_t i = 0; i < s.size(); ++i) {
    const EventView x = s[i], y = back[i];
    EXPECT_EQ(x.pic, y.pic);
    EXPECT_EQ(x.event, y.event);
    EXPECT_EQ(x.weight, y.weight);
    EXPECT_EQ(x.delivered_pc, y.delivered_pc);
    EXPECT_EQ(x.has_candidate, y.has_candidate);
    EXPECT_EQ(x.candidate_pc, y.candidate_pc);
    EXPECT_EQ(x.has_ea, y.has_ea);
    EXPECT_EQ(x.ea, y.ea);
    EXPECT_TRUE(x.callstack == y.callstack);
    EXPECT_EQ(x.seq, y.seq);
  }
  // A deserialized store keeps interning: appending a known stack reuses it.
  EventStore back2 = back;
  back2.append(0, HwEvent::EC_rd_miss, 1, 1, false, 0, false, 0, a.data(), a.size(), 99);
  EXPECT_EQ(back2.unique_callstacks(), back.unique_callstacks());
  EXPECT_EQ(back2.arena_words(), back.arena_words());
}

TEST(EventStore, TruncatedStreamIsRejected) {
  EventStore s = make_store({{1, 2}, {3}});
  ByteWriter w;
  s.serialize(w);
  std::vector<u8> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_THROW(EventStore::deserialize(r), Error);
}

// --- corruption robustness ---------------------------------------------------
// A truncated or corrupt experiment directory must surface as an Error that
// names the offending file — never as UB, an OOM-sized allocation, or an
// uncontextualized bounds failure.

template <typename T>
void put_col(ByteWriter& w, const std::vector<T>& col) {
  w.put_u64(col.size());
  w.put_blob(col.data(), col.size() * sizeof(T));
}

TEST(EventStoreCorruption, OutOfRangeArenaHandleIsRejected) {
  ByteWriter w;
  put_col<u8>(w, {0});        // pic
  put_col<u8>(w, {3});        // event
  put_col<u64>(w, {1});       // weight
  put_col<u64>(w, {0x1000});  // delivered_pc
  put_col<u8>(w, {0});        // flags
  put_col<u64>(w, {0});       // candidate_pc
  put_col<u64>(w, {0});       // ea
  put_col<u64>(w, {0});       // seq
  put_col<u64>(w, {4});       // cs_offset: outside the 1-word arena below
  put_col<u32>(w, {2});       // cs_len
  put_col<u64>(w, {0xdead});  // arena (1 word)
  ByteReader r(w.bytes());
  EXPECT_THROW(EventStore::deserialize(r), Error);
}

TEST(EventStoreCorruption, WrappingArenaHandleIsRejected) {
  // offset + len wraps past 2^64: the overflow-safe form must still reject.
  ByteWriter w;
  put_col<u8>(w, {0});
  put_col<u8>(w, {3});
  put_col<u64>(w, {1});
  put_col<u64>(w, {0x1000});
  put_col<u8>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {~u64{0}});  // cs_offset near 2^64
  put_col<u32>(w, {8});        // cs_len: offset + len wraps
  put_col<u64>(w, {0xdead});
  ByteReader r(w.bytes());
  EXPECT_THROW(EventStore::deserialize(r), Error);
}

TEST(EventStoreCorruption, InconsistentColumnLengthsAreRejected) {
  ByteWriter w;
  put_col<u8>(w, {0, 0});  // pic: two rows
  put_col<u8>(w, {3});     // every other column: one row
  put_col<u64>(w, {1});
  put_col<u64>(w, {0x1000});
  put_col<u8>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {0});
  put_col<u64>(w, {0});
  put_col<u32>(w, {0});
  put_col<u64>(w, {});
  ByteReader r(w.bytes());
  EXPECT_THROW(EventStore::deserialize(r), Error);
}

class ExperimentCorruption : public ::testing::Test {
 protected:
  static Experiment tiny_experiment() {
    scc::Module m;
    scc::Function* main = m.add_function("main");
    {
      scc::FunctionBuilder fb(m, *main);
      fb.ret(scc::Val(i64{0}));
    }
    Experiment ex;
    ex.image = scc::compile(m);
    ex.log = "tiny";
    ex.events = make_store({{0x10, 0x20}, {}, {0x10, 0x20}});
    return ex;
  }

  /// Save `ex`, apply `mutate` to the bytes of `file`, and expect load() to
  /// throw an Error whose message names the file and the directory.
  static void expect_corrupt(const Experiment& ex, FileFormat fmt, const char* file,
                             const std::function<void(std::vector<u8>&)>& mutate) {
    const std::string dir = "/tmp/dsp_corrupt_exp";
    ex.save(dir, fmt);
    std::vector<u8> bytes = read_file(dir + "/" + file);
    mutate(bytes);
    write_file(dir + "/" + file, bytes);
    try {
      Experiment::load(dir);
      FAIL() << "expected Error loading mutated " << file;
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(file), std::string::npos) << msg;
      EXPECT_NE(msg.find(dir), std::string::npos) << msg;
    }
  }
};

TEST_F(ExperimentCorruption, BadMagicIsRejected) {
  expect_corrupt(tiny_experiment(), FileFormat::Columnar, "events.bin",
                 [](std::vector<u8>& b) { b[0] ^= 0xFF; });
}

TEST_F(ExperimentCorruption, TruncatedHeaderIsRejected) {
  expect_corrupt(tiny_experiment(), FileFormat::Columnar, "events.bin",
                 [](std::vector<u8>& b) { b.resize(6); });
}

TEST_F(ExperimentCorruption, ImplausibleCounterCountIsRejected) {
  // The 32-bit counter count sits right after the magic; a huge value must be
  // rejected by the plausibility check, not drive allocation.
  for (const FileFormat fmt : {FileFormat::Columnar, FileFormat::Legacy}) {
    expect_corrupt(tiny_experiment(), fmt, "events.bin", [](std::vector<u8>& b) {
      b[4] = b[5] = b[6] = b[7] = 0xFF;
    });
  }
}

TEST_F(ExperimentCorruption, TruncatedColumnIsRejected) {
  expect_corrupt(tiny_experiment(), FileFormat::Columnar, "events.bin",
                 [](std::vector<u8>& b) { b.resize(b.size() * 3 / 4); });
}

TEST_F(ExperimentCorruption, TruncatedLegacyEventsAreRejected) {
  expect_corrupt(tiny_experiment(), FileFormat::Legacy, "events.bin",
                 [](std::vector<u8>& b) { b.resize(b.size() * 3 / 4); });
}

TEST_F(ExperimentCorruption, HugeLegacyEventCountIsRejectedBeforeAllocation) {
  // Header with zero counters is 52 bytes; the legacy event count follows at
  // offset 56. A count far beyond the bytes present must fail the
  // min-record-size plausibility check (and must not reserve gigabytes).
  expect_corrupt(tiny_experiment(), FileFormat::Legacy, "events.bin",
                 [](std::vector<u8>& b) {
                   ASSERT_GE(b.size(), 60u);
                   b[56] = 0xFF;
                   b[57] = 0xFF;
                   b[58] = 0xFF;
                   b[59] = 0x7F;
                 });
}

TEST_F(ExperimentCorruption, TrailingBytesAfterTrailerAreRejected) {
  expect_corrupt(tiny_experiment(), FileFormat::Columnar, "events.bin",
                 [](std::vector<u8>& b) { b.push_back(0); });
}

TEST_F(ExperimentCorruption, CorruptLoadobjectsIsRejectedWithContext) {
  expect_corrupt(tiny_experiment(), FileFormat::Columnar, "loadobjects.bin",
                 [](std::vector<u8>& b) { b.resize(b.size() / 2); });
}

TEST_F(ExperimentCorruption, BothFormatsStillRoundTripAfterHardening) {
  const Experiment ex = tiny_experiment();
  for (const FileFormat fmt : {FileFormat::Columnar, FileFormat::Legacy}) {
    const std::string dir = "/tmp/dsp_corrupt_rt";
    ex.save(dir, fmt);
    const Experiment back = Experiment::load(dir);
    ASSERT_EQ(back.events.size(), ex.events.size());
    for (size_t i = 0; i < ex.events.size(); ++i) {
      EXPECT_TRUE(back.events.callstack(i) == ex.events.callstack(i));
    }
  }
}

// --- corruption hardening over the zero-copy aligned layout ------------------
// Every mutation above must also be rejected by the DSPG path — both by the
// mmap'd view validation (DSPROF_MMAP unset) and by the stream fallback
// (DSPROF_MMAP=0). RAII env guard so a failing assertion cannot leak the
// override into later tests.

class ScopedMmapEnv {
 public:
  explicit ScopedMmapEnv(const char* value) {
    const char* old = std::getenv("DSPROF_MMAP");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) unsetenv("DSPROF_MMAP");
    else setenv("DSPROF_MMAP", value, 1);
  }
  ~ScopedMmapEnv() {
    if (had_old_) setenv("DSPROF_MMAP", old_.c_str(), 1);
    else unsetenv("DSPROF_MMAP");
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

class AlignedCorruption : public ExperimentCorruption {
 protected:
  static void expect_corrupt_both_loaders(
      const char* file, const std::function<void(std::vector<u8>&)>& mutate) {
    for (const char* mm : {static_cast<const char*>(nullptr), "0"}) {
      const ScopedMmapEnv env(mm);
      expect_corrupt(tiny_experiment(), FileFormat::ColumnarAligned, file, mutate);
    }
  }
};

TEST_F(AlignedCorruption, BadMagicIsRejected) {
  expect_corrupt_both_loaders("events.bin", [](std::vector<u8>& b) { b[0] ^= 0xFF; });
}

TEST_F(AlignedCorruption, TruncatedHeaderIsRejected) {
  expect_corrupt_both_loaders("events.bin", [](std::vector<u8>& b) { b.resize(6); });
}

TEST_F(AlignedCorruption, ImplausibleCounterCountIsRejected) {
  expect_corrupt_both_loaders("events.bin", [](std::vector<u8>& b) {
    b[4] = b[5] = b[6] = b[7] = 0xFF;
  });
}

TEST_F(AlignedCorruption, TruncatedColumnIsRejected) {
  expect_corrupt_both_loaders("events.bin",
                              [](std::vector<u8>& b) { b.resize(b.size() * 3 / 4); });
}

TEST_F(AlignedCorruption, HugeColumnCountIsRejectedBeforeAllocation) {
  // The first aligned column count sits right after the header; a count far
  // beyond the bytes present must fail the overflow-safe per-column bound
  // (count <= remaining / sizeof(T)), not drive a huge allocation or an
  // out-of-bounds view.
  expect_corrupt_both_loaders("events.bin", [](std::vector<u8>& b) {
    // Header with zero counters is 4 (magic) + 4 (count) + 48 = 56 bytes;
    // the pic column count follows.
    ASSERT_GE(b.size(), 64u);
    for (size_t i = 56; i < 64; ++i) b[i] = 0xFF;
  });
}

TEST_F(AlignedCorruption, TrailingBytesAfterTrailerAreRejected) {
  expect_corrupt_both_loaders("events.bin", [](std::vector<u8>& b) { b.push_back(0); });
}

TEST_F(AlignedCorruption, CorruptLoadobjectsIsRejectedWithContext) {
  expect_corrupt_both_loaders("loadobjects.bin",
                              [](std::vector<u8>& b) { b.resize(b.size() / 2); });
}

TEST_F(AlignedCorruption, AlignedFormatStillRoundTripsAfterHardening) {
  const Experiment ex = tiny_experiment();
  for (const char* mm : {static_cast<const char*>(nullptr), "0"}) {
    const ScopedMmapEnv env(mm);
    const std::string dir = "/tmp/dsp_corrupt_rt_aligned";
    ex.save(dir, FileFormat::ColumnarAligned);
    const Experiment back = Experiment::load(dir);
    ASSERT_EQ(back.events.size(), ex.events.size());
    for (size_t i = 0; i < ex.events.size(); ++i) {
      EXPECT_TRUE(back.events.callstack(i) == ex.events.callstack(i));
    }
    // The zero-copy loader produces a frozen mapped store; the stream
    // fallback produces a live owning one. Same contents either way.
    EXPECT_EQ(back.events.is_mapped(), mm == nullptr);
  }
}

/// Build aligned EventStore bytes with hand-written columns (count, pad to
/// 8, raw bytes — the serialize_aligned layout) so hostile handles can be
/// injected, then run them through the real mmap path via a temp file.
template <typename T>
void put_aligned_col(ByteWriter& w, const std::vector<T>& col) {
  w.put_u64(col.size());
  w.align_to(8);
  w.put_raw(col.data(), col.size() * sizeof(T));
}

void expect_mapped_rejects(const std::function<void(ByteWriter&)>& write_columns) {
  ByteWriter w;
  write_columns(w);
  const std::string path = "/tmp/dsp_mapped_hostile.bin";
  write_file(path, w.bytes());
  const auto mf = MappedFile::open(path);
  ByteReader r(mf->data(), mf->size());
  EXPECT_THROW(EventStore::deserialize_aligned(r, mf), Error);
}

TEST(AlignedCorruption2, OutOfRangeArenaHandleIsRejectedByMappedValidation) {
  expect_mapped_rejects([](ByteWriter& w) {
    put_aligned_col<u8>(w, {0});        // pic
    put_aligned_col<u8>(w, {3});        // event
    put_aligned_col<u64>(w, {1});       // weight
    put_aligned_col<u64>(w, {0x1000});  // delivered_pc
    put_aligned_col<u8>(w, {0});        // flags
    put_aligned_col<u64>(w, {0});       // candidate_pc
    put_aligned_col<u64>(w, {0});       // ea
    put_aligned_col<u64>(w, {0});       // seq
    put_aligned_col<u64>(w, {4});       // cs_offset: outside the 1-word arena
    put_aligned_col<u32>(w, {2});       // cs_len
    put_aligned_col<u64>(w, {0xdead});  // arena (1 word)
  });
}

TEST(AlignedCorruption2, WrappingArenaHandleIsRejectedByMappedValidation) {
  expect_mapped_rejects([](ByteWriter& w) {
    put_aligned_col<u8>(w, {0});
    put_aligned_col<u8>(w, {3});
    put_aligned_col<u64>(w, {1});
    put_aligned_col<u64>(w, {0x1000});
    put_aligned_col<u8>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {~u64{0}});  // cs_offset near 2^64: offset+len wraps
    put_aligned_col<u32>(w, {8});
    put_aligned_col<u64>(w, {0xdead});
  });
}

TEST(AlignedCorruption2, InconsistentColumnLengthsAreRejectedByMappedValidation) {
  expect_mapped_rejects([](ByteWriter& w) {
    put_aligned_col<u8>(w, {0, 0});  // pic: two rows
    put_aligned_col<u8>(w, {3});     // every other column: one row
    put_aligned_col<u64>(w, {1});
    put_aligned_col<u64>(w, {0x1000});
    put_aligned_col<u8>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u64>(w, {0});
    put_aligned_col<u32>(w, {0});
    put_aligned_col<u64>(w, {});
  });
}

// --- experiment round trips in both on-disk layouts -------------------------

class StoreRoundTrip : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Scale the caches below the working set so E$ events actually fire.
    machine::CpuConfig cfg;
    cfg.hierarchy.dcache = {4 * 1024, 4, 32, false};
    cfg.hierarchy.ecache = {32 * 1024, 2, 512, true};
    cfg.hierarchy.dtlb = {8, 2, 8 * 1024};
    auto m = testfix::make_chase_module(2000, 6, 4096);
    image_ = new sym::Image(scc::compile(*m));
    ex_ = new Experiment(
        testfix::quick_collect(*image_, "+ecstall,1009,+ecrm,97", "hi", cfg));
    ASSERT_GT(ex_->events.size(), 100u);
  }
  static void TearDownTestSuite() {
    delete ex_;
    delete image_;
    ex_ = nullptr;
    image_ = nullptr;
  }
  static void expect_same_events(const Experiment& x, const Experiment& y) {
    ASSERT_EQ(x.events.size(), y.events.size());
    for (size_t i = 0; i < x.events.size(); ++i) {
      const EventView a = x.events[i], b = y.events[i];
      ASSERT_EQ(a.pic, b.pic) << "event " << i;
      ASSERT_EQ(a.event, b.event) << "event " << i;
      ASSERT_EQ(a.weight, b.weight) << "event " << i;
      ASSERT_EQ(a.delivered_pc, b.delivered_pc) << "event " << i;
      ASSERT_EQ(a.has_candidate, b.has_candidate) << "event " << i;
      ASSERT_EQ(a.candidate_pc, b.candidate_pc) << "event " << i;
      ASSERT_EQ(a.has_ea, b.has_ea) << "event " << i;
      ASSERT_EQ(a.ea, b.ea) << "event " << i;
      ASSERT_TRUE(a.callstack == b.callstack) << "event " << i;
      ASSERT_EQ(a.seq, b.seq) << "event " << i;
    }
  }
  static sym::Image* image_;
  static Experiment* ex_;
};
sym::Image* StoreRoundTrip::image_ = nullptr;
Experiment* StoreRoundTrip::ex_ = nullptr;

u32 events_magic(const std::string& dir) {
  const std::vector<u8> bytes = read_file(dir + "/events.bin");
  ByteReader r(bytes);
  return r.get_u32();
}

TEST_F(StoreRoundTrip, ColumnarFormatRoundTrips) {
  const std::string dir = "/tmp/dsp_store_rt_columnar";
  ex_->save(dir, FileFormat::Columnar);
  EXPECT_EQ(events_magic(dir), 0x44535046u);  // 'DSPF'
  const Experiment back = Experiment::load(dir);
  expect_same_events(*ex_, back);
  EXPECT_EQ(back.events.unique_callstacks(), ex_->events.unique_callstacks());
  EXPECT_EQ(back.total_cycles, ex_->total_cycles);
  // DSPF predates allocation-site PCs: addr/size round-trip, site loads as 0.
  ASSERT_EQ(back.allocations.size(), ex_->allocations.size());
  for (size_t i = 0; i < back.allocations.size(); ++i) {
    EXPECT_EQ(back.allocations[i].addr, ex_->allocations[i].addr);
    EXPECT_EQ(back.allocations[i].size, ex_->allocations[i].size);
    EXPECT_EQ(back.allocations[i].site_pc, 0u);
  }
}

TEST_F(StoreRoundTrip, LegacyFormatRoundTripsAndAgreesWithColumnar) {
  // The seed's row-oriented layout must load into the same events (and the
  // loader re-interns, so dedup statistics match the in-memory store).
  const std::string dir = "/tmp/dsp_store_rt_legacy";
  ex_->save(dir, FileFormat::Legacy);
  EXPECT_EQ(events_magic(dir), 0x44535045u);  // 'DSPE'
  const Experiment back = Experiment::load(dir);
  expect_same_events(*ex_, back);
  EXPECT_EQ(back.events.unique_callstacks(), ex_->events.unique_callstacks());
  // Both layouts feed the analyzer identically.
  const Experiment col = Experiment::load("/tmp/dsp_store_rt_columnar");
  analyze::Analysis al(back), ac(col);
  EXPECT_EQ(analyze::render_overview(al), analyze::render_overview(ac));
  EXPECT_EQ(analyze::render_data_objects(al, analyze::kUserCpuMetric),
            analyze::render_data_objects(ac, analyze::kUserCpuMetric));
}

// --- reduction determinism ---------------------------------------------------

std::string all_views(analyze::Analysis& a) {
  const size_t m = static_cast<size_t>(machine::HwEvent::EC_rd_miss);
  std::string s;
  s += analyze::render_overview(a);
  s += analyze::render_function_list(a);
  s += analyze::render_hot_pcs(a, m);
  s += analyze::render_data_objects(a, m);
  s += analyze::render_member_expansion(a, "pair");
  s += analyze::render_annotated_source(a, "walk_list");
  s += analyze::render_annotated_disassembly(a, "walk_list");
  s += analyze::render_callers_callees(a, "walk_list");
  s += analyze::render_effectiveness(a);
  s += analyze::render_segments(a);
  s += analyze::render_pages(a, m);
  s += analyze::render_cache_lines(a, m);
  s += analyze::render_instances(a, m);
  return s;
}

TEST_F(StoreRoundTrip, ShardedReductionIsThreadCountInvariant) {
  analyze::AnalysisOptions serial;
  serial.threads = 1;
  analyze::Analysis a1(*ex_, serial);
  const std::string serial_views = all_views(a1);
  for (unsigned t : {2u, 3u, 8u}) {
    analyze::AnalysisOptions opt;
    opt.threads = t;
    analyze::Analysis at(*ex_, opt);
    EXPECT_EQ(all_views(at), serial_views) << "threads=" << t;
    EXPECT_EQ(at.total(), a1.total()) << "threads=" << t;
    EXPECT_EQ(at.data_total(), a1.data_total()) << "threads=" << t;
  }
}

TEST_F(StoreRoundTrip, ShardedMatchesSeedEquivalentBaselineEngine) {
  analyze::AnalysisOptions base;
  base.engine = analyze::Reduction::Engine::Baseline;
  analyze::Analysis ab(*ex_, base);
  analyze::AnalysisOptions shard;
  shard.threads = 4;
  shard.engine = analyze::Reduction::Engine::Sharded;
  analyze::Analysis as(*ex_, shard);
  EXPECT_EQ(all_views(ab), all_views(as));
  EXPECT_EQ(ab.total(), as.total());
  EXPECT_EQ(ab.data_total(), as.data_total());
  EXPECT_EQ(ab.reduce().events_reduced, as.reduce().events_reduced);
}

// --- zero-copy aligned layout + mmap loading ---------------------------------

TEST_F(StoreRoundTrip, AlignedFormatIsTheDefaultAndRoundTripsZeroCopy) {
  const std::string dir = "/tmp/dsp_store_rt_aligned";
  ex_->save(dir);  // default format
  EXPECT_EQ(events_magic(dir), 0x44535047u);  // 'DSPG'
  const Experiment back = Experiment::load(dir);
  EXPECT_TRUE(back.events.is_mapped());
  EXPECT_TRUE(back.events.is_frozen());
  expect_same_events(*ex_, back);
  EXPECT_EQ(back.events.unique_callstacks(), ex_->events.unique_callstacks());
  EXPECT_EQ(back.total_cycles, ex_->total_cycles);
  EXPECT_EQ(back.allocations, ex_->allocations);  // site PCs survive DSPG
}

TEST_F(StoreRoundTrip, MappedAndStreamedLoadsAgree) {
  const std::string dir = "/tmp/dsp_store_rt_aligned_eq";
  ex_->save(dir, FileFormat::ColumnarAligned);
  const Experiment mapped = Experiment::load(dir);
  ASSERT_TRUE(mapped.events.is_mapped());
  Experiment streamed;
  {
    const ScopedMmapEnv env("0");
    streamed = Experiment::load(dir);
  }
  ASSERT_FALSE(streamed.events.is_mapped());
  expect_same_events(mapped, streamed);
  EXPECT_EQ(mapped.events.unique_callstacks(), streamed.events.unique_callstacks());
  // Both loaders feed the analyzer identically — and identically to the
  // original in-memory experiment.
  analyze::Analysis am(mapped), as(streamed), ao(*ex_);
  EXPECT_EQ(analyze::render_json_report(am), analyze::render_json_report(as));
  EXPECT_EQ(analyze::render_json_report(am), analyze::render_json_report(ao));
}

TEST_F(StoreRoundTrip, MappedStoreIsFrozenAndRefusesAppend) {
  const std::string dir = "/tmp/dsp_store_rt_aligned_frozen";
  ex_->save(dir, FileFormat::ColumnarAligned);
  Experiment back = Experiment::load(dir);
  ASSERT_TRUE(back.events.is_frozen());
  const u64 pc = 0x1000;
  EXPECT_THROW(back.events.append(0, machine::HwEvent::EC_rd_miss, 1, pc, false, 0, false,
                                  0, nullptr, 0, 0),
               Error);
  // A frozen store can still be copied into a live one, re-interning.
  EventStore live;
  live.append_range(back.events, 0, back.events.size());
  EXPECT_EQ(live.size(), back.events.size());
  EXPECT_EQ(live.unique_callstacks(), back.events.unique_callstacks());
}

TEST_F(StoreRoundTrip, SerializeRangeMatchesAppendRangeSlice) {
  const auto& ev = ex_->events;
  ASSERT_GT(ev.size(), 50u);
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 8; ++iter) {
    const size_t begin = rng() % ev.size();
    const size_t end = begin + rng() % (ev.size() - begin + 1);
    ByteWriter w;
    ev.serialize_range(w, begin, end);
    ByteReader r(w.bytes());
    const EventStore got = EventStore::deserialize(r);
    EventStore want;
    want.append_range(ev, begin, end);
    ASSERT_EQ(got.size(), want.size()) << "[" << begin << "," << end << ")";
    for (size_t i = 0; i < got.size(); ++i) {
      const EventView a = got[i], b = want[i];
      ASSERT_EQ(a.pic, b.pic);
      ASSERT_EQ(a.weight, b.weight);
      ASSERT_EQ(a.delivered_pc, b.delivered_pc);
      ASSERT_EQ(a.candidate_pc, b.candidate_pc);
      ASSERT_EQ(a.ea, b.ea);
      ASSERT_EQ(a.seq, b.seq);
      ASSERT_TRUE(a.callstack == b.callstack) << "event " << i;
    }
    EXPECT_EQ(got.unique_callstacks(), want.unique_callstacks());
  }
}

// --- radix engine equivalence ------------------------------------------------

TEST_F(StoreRoundTrip, RadixMatchesBaselineAndShardedForAnyThreadCount) {
  analyze::AnalysisOptions base;
  base.engine = analyze::Reduction::Engine::Baseline;
  analyze::Analysis ab(*ex_, base);
  const std::string base_views = all_views(ab);
  for (unsigned t : {1u, 2u, 3u, 8u}) {
    analyze::AnalysisOptions opt;
    opt.engine = analyze::Reduction::Engine::Radix;
    opt.threads = t;
    analyze::Analysis ar(*ex_, opt);
    EXPECT_EQ(all_views(ar), base_views) << "threads=" << t;
    EXPECT_EQ(ar.total(), ab.total()) << "threads=" << t;
    EXPECT_EQ(ar.data_total(), ab.data_total()) << "threads=" << t;
    EXPECT_EQ(ar.reduce().events_reduced, ab.reduce().events_reduced);
  }
}

TEST_F(StoreRoundTrip, RadixMatchesOnMappedExperiments) {
  // The fast path end to end: a DSPG experiment loaded through mmap views,
  // reduced by the radix engine, must render exactly what the owning store
  // and the baseline engine produce.
  const std::string dir = "/tmp/dsp_store_rt_aligned_radix";
  ex_->save(dir, FileFormat::ColumnarAligned);
  const Experiment mapped = Experiment::load(dir);
  ASSERT_TRUE(mapped.events.is_mapped());
  analyze::AnalysisOptions radix;
  radix.engine = analyze::Reduction::Engine::Radix;
  analyze::AnalysisOptions base;
  base.engine = analyze::Reduction::Engine::Baseline;
  analyze::Analysis ar(mapped, radix), ab(*ex_, base);
  EXPECT_EQ(all_views(ar), all_views(ab));
}

TEST(ReduceEngineEnv, ResolveEngineHonorsOverride) {
  const auto with_env = [](const char* v, analyze::Reduction::Engine want) {
    setenv("DSPROF_REDUCE_ENGINE", v, 1);
    EXPECT_EQ(analyze::Reduction::resolve_engine(analyze::Reduction::Engine::Auto), want)
        << v;
    unsetenv("DSPROF_REDUCE_ENGINE");
  };
  with_env("radix", analyze::Reduction::Engine::Radix);
  with_env("sharded", analyze::Reduction::Engine::Sharded);
  with_env("baseline", analyze::Reduction::Engine::Baseline);
  // Unset: Auto resolves to the radix default; explicit engines pass through.
  EXPECT_EQ(analyze::Reduction::resolve_engine(analyze::Reduction::Engine::Auto),
            analyze::Reduction::Engine::Radix);
  EXPECT_EQ(analyze::Reduction::resolve_engine(analyze::Reduction::Engine::Baseline),
            analyze::Reduction::Engine::Baseline);
  setenv("DSPROF_REDUCE_ENGINE", "bogus", 1);
  EXPECT_THROW(analyze::Reduction::resolve_engine(analyze::Reduction::Engine::Auto), Error);
  unsetenv("DSPROF_REDUCE_ENGINE");
}

// --- engine equivalence as a property over random stores ---------------------

TEST_F(StoreRoundTrip, EnginesAgreeOnRandomStoresAndThreadCounts) {
  // Fuzz the fold inputs, not just one collected workload: random events
  // (valid and wild PCs, random flags/EAs, stacks drawn from a small pool
  // so interning kicks in), reduced by all three engines at several thread
  // counts — every rendered view must be byte-identical.
  std::mt19937_64 rng(0xC0FFEE);
  const u64 text_lo = 0x1000, text_hi = 0x1000 + 8 * 1024;
  const auto rand_pc = [&]() -> u64 {
    switch (rng() % 4) {
      case 0: return text_lo + (rng() % ((text_hi - text_lo) / 4)) * 4;  // in text
      case 1: return rng();                                              // wild
      case 2: return 0;
      default: return text_hi + rng() % 4096;  // just past the image
    }
  };
  std::vector<u64> pool(16);
  for (auto& p : pool) p = rand_pc();

  for (int round = 0; round < 3; ++round) {
    Experiment ex;
    ex.image = *StoreRoundTrip::image_;
    ex.counters = ex_->counters;
    ex.clock_interval = ex_->clock_interval;
    ex.clock_hz = ex_->clock_hz;
    const size_t n = 500 + rng() % 1500;
    std::vector<u64> stack;
    for (size_t i = 0; i < n; ++i) {
      const unsigned pic = rng() % 3;  // 0, 1, or the clock pic
      const machine::HwEvent event =
          pic == 2 ? machine::HwEvent::Cycle_cnt : ex.counters[pic].event;
      stack.clear();
      const size_t depth = rng() % 5;
      for (size_t d = 0; d < depth; ++d) stack.push_back(pool[rng() % pool.size()]);
      const bool has_candidate = rng() % 2 != 0;
      const bool has_ea = has_candidate && rng() % 2 != 0;
      ex.events.append(pic, event, 1 + rng() % 10000, rand_pc(), has_candidate, rand_pc(),
                       has_ea, rng() % (1u << 30), stack.data(), stack.size(), i);
    }

    std::string want;
    for (const auto engine :
         {analyze::Reduction::Engine::Baseline, analyze::Reduction::Engine::Sharded,
          analyze::Reduction::Engine::Radix}) {
      for (const unsigned threads : {1u, 3u}) {
        analyze::AnalysisOptions opt;
        opt.engine = engine;
        opt.threads = threads;
        analyze::Analysis a(ex, opt);
        const std::string got = analyze::render_json_report(a);
        if (want.empty()) want = got;
        EXPECT_EQ(got, want) << "round " << round << " engine "
                             << static_cast<int>(engine) << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace dsprof::experiment
