// End-to-end: the full paper workflow (compile -> collect two experiments ->
// analyze code- and data-space views) on the DSL MCF, on a scaled machine.
#include <gtest/gtest.h>

#include "analyze/reports.hpp"
#include "collect/collector.hpp"
#include "mcfsim/experiments.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace dsprof {
namespace {

using analyze::Analysis;
using machine::HwEvent;

class PaperWorkflow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exps_ = new mcfsim::PaperExperiments(
        mcfsim::collect_paper_experiments(mcfsim::PaperSetup::standard()));
    analysis_ = new Analysis({&exps_->ex1, &exps_->ex2});
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete exps_;
  }
  static mcfsim::PaperExperiments* exps_;
  static Analysis* analysis_;
};

mcfsim::PaperExperiments* PaperWorkflow::exps_ = nullptr;
Analysis* PaperWorkflow::analysis_ = nullptr;

TEST_F(PaperWorkflow, RefreshPotentialDominatesTheProfile) {
  // Paper Figure 2: refresh_potential leads User CPU time and E$ stalls.
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto by_stall = analysis_->functions(stall);
  ASSERT_FALSE(by_stall.empty());
  EXPECT_EQ(by_stall[0].name, "refresh_potential");
  EXPECT_GT(by_stall[0].mv[stall], analysis_->total()[stall] * 0.35);

  const auto by_cpu = analysis_->functions(analyze::kUserCpuMetric);
  ASSERT_FALSE(by_cpu.empty());
  // The top CPU consumers include the paper's three hot functions.
  std::vector<std::string> top;
  for (size_t i = 0; i < std::min<size_t>(5, by_cpu.size()); ++i) top.push_back(by_cpu[i].name);
  auto has = [&](const std::string& n) {
    return std::find(top.begin(), top.end(), n) != top.end();
  };
  EXPECT_TRUE(has("refresh_potential"));
  EXPECT_TRUE(has("primal_bea_mpp") || has("price_out_impl"));
}

TEST_F(PaperWorkflow, DtlbMissesConcentrateInRefreshPotential) {
  // Paper: 88% of DTLB misses in refresh_potential (random walk over nodes).
  const size_t dtlb = static_cast<size_t>(HwEvent::DTLB_miss);
  const auto rows = analysis_->functions(dtlb);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].name, "refresh_potential");
  EXPECT_GT(rows[0].mv[dtlb], analysis_->total()[dtlb] * 0.5);
}

TEST_F(PaperWorkflow, ArcAndNodeDominateDataSpace) {
  // Paper Figure 6: structure:arc and structure:node account for nearly all
  // E$ stalls; everything else is noise.
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto objs = analysis_->data_objects(stall);
  ASSERT_GE(objs.size(), 2u);
  double arc = 0, node = 0;
  const double total = analysis_->data_total()[stall];
  for (const auto& r : objs) {
    if (r.name == "{structure:arc -}") arc = r.mv[stall];
    if (r.name == "{structure:node -}") node = r.mv[stall];
  }
  EXPECT_GT(arc + node, total * 0.75);
  EXPECT_GT(arc, 0.0);
  EXPECT_GT(node, 0.0);
}

TEST_F(PaperWorkflow, NodeMemberExpansionMatchesFigure7Shape) {
  // The hot node members are orientation (+56), child (+24), potential (+88),
  // pred (+16), basic_arc (+64); cold members like mark/time stay near zero.
  const size_t stall = static_cast<size_t>(HwEvent::EC_stall_cycles);
  const auto rows = analysis_->members("node");
  ASSERT_EQ(rows.size(), 15u);
  double hot = 0, cold = 0, total = 0;
  for (const auto& r : rows) {
    total += r.mv[stall];
    const bool is_hot = r.offset == 56 || r.offset == 24 || r.offset == 88 || r.offset == 16 ||
                        r.offset == 64;
    (is_hot ? hot : cold) += r.mv[stall];
  }
  ASSERT_GT(total, 0.0);
  EXPECT_GT(hot, total * 0.85);
  EXPECT_LT(cold, total * 0.15);
}

TEST_F(PaperWorkflow, BacktrackingEffectivenessMatchesPaperOrdering) {
  // Paper §3.2.5: 100% for DTLB (precise), ~100% for E$ read misses, >99%
  // for E$ stalls, ~94% for E$ refs (the skid ordering).
  double eff[analyze::kNumMetrics];
  for (auto& e : eff) e = -1;
  for (const auto& r : analysis_->effectiveness()) eff[r.metric] = r.effectiveness();
  const double dtlb = eff[static_cast<size_t>(HwEvent::DTLB_miss)];
  const double ecrm = eff[static_cast<size_t>(HwEvent::EC_rd_miss)];
  const double ecstall = eff[static_cast<size_t>(HwEvent::EC_stall_cycles)];
  const double ecref = eff[static_cast<size_t>(HwEvent::EC_ref)];
  EXPECT_DOUBLE_EQ(dtlb, 1.0);
  EXPECT_GT(ecrm, 0.9);
  EXPECT_GT(ecstall, 0.9);
  EXPECT_GT(ecref, 0.65);
  EXPECT_GE(ecrm, ecref);  // more skid => less effective
}

TEST_F(PaperWorkflow, AnnotatedViewsShowTheCriticalLoop) {
  const std::string src = analyze::render_annotated_source(*analysis_, "refresh_potential");
  EXPECT_NE(src.find("node->orientation"), std::string::npos);
  EXPECT_NE(src.find("node->basic_arc->cost + node->pred->potential"), std::string::npos);
  const std::string dis =
      analyze::render_annotated_disassembly(*analysis_, "refresh_potential");
  EXPECT_NE(dis.find("ldx"), std::string::npos);
  EXPECT_NE(dis.find("{structure:node -}.{long orientation}"), std::string::npos);
  EXPECT_NE(dis.find("{structure:arc -}.{cost_t=long cost}"), std::string::npos);
  EXPECT_NE(dis.find("<branch target>"), std::string::npos);
}

TEST_F(PaperWorkflow, HotPcsIncludeArcCostLoads) {
  const std::string pcs =
      analyze::render_hot_pcs(*analysis_, static_cast<size_t>(HwEvent::EC_rd_miss), 15);
  EXPECT_NE(pcs.find("refresh_potential + 0x"), std::string::npos);
  EXPECT_NE(pcs.find("{structure:arc -}.{cost_t=long cost}"), std::string::npos);
}

TEST_F(PaperWorkflow, OverviewReportsStallAndDtlbCost) {
  const std::string overview = analyze::render_overview(*analysis_);
  EXPECT_NE(overview.find("E$ Stall"), std::string::npos);
  EXPECT_NE(overview.find("DTLB miss cost"), std::string::npos);
  EXPECT_NE(overview.find("E$ Read Miss rate"), std::string::npos);
}

TEST_F(PaperWorkflow, StreamedSessionsMatchOfflineAnalysisBitForBit) {
  // The dsprofd acceptance bar on the paper's own workloads: stream each of
  // the two collect runs into its own live session and require the rendered
  // snapshot to be byte-identical to the offline report over the same events
  // (`er_print <dir> -J`). Integer metric accumulation is associative, so
  // the batch split (here an uneven 777 events per frame) must not matter.
  serve::Server server;
  for (const experiment::Experiment* ex : {&exps_->ex1, &exps_->ex2}) {
    auto [client_end, server_end] = serve::make_pipe_pair();
    server.add_session(std::move(server_end));
    serve::Client client(std::move(client_end));

    serve::Accounting acct;
    ASSERT_TRUE(serve::stream_experiment(client, *ex, /*batch_events=*/777, acct).ok());
    ASSERT_EQ(acct.events_in, ex->events.size());
    ASSERT_EQ(acct.events_reduced, ex->events.size());
    ASSERT_EQ(acct.events_dropped, 0u);

    std::string streamed;
    ASSERT_TRUE(client.snapshot(acct, streamed).ok());
    Analysis offline(*ex);
    EXPECT_EQ(streamed, analyze::render_json_report(offline));
    ASSERT_TRUE(client.close(acct).ok());
  }
  server.stop();
}

}  // namespace
}  // namespace dsprof
