#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"

namespace dsprof::isa {
namespace {

TEST(RegNames, SparcStyle) {
  EXPECT_STREQ(reg_name(G0), "%g0");
  EXPECT_STREQ(reg_name(O3), "%o3");
  EXPECT_STREQ(reg_name(L7), "%l7");
  EXPECT_STREQ(reg_name(I6), "%i6");
  EXPECT_EQ(kSp, O6);
  EXPECT_EQ(kLink, O7);
}

TEST(EncodeDecode, AluImmediate) {
  const Instr in = alu_ri(Op::ADD, O1, O2, -17);
  const Instr out = decode(encode(in));
  EXPECT_EQ(in, out);
}

TEST(EncodeDecode, AluRegister) {
  const Instr in = alu_rr(Op::XOR, L3, I2, G5);
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(EncodeDecode, LoadStore) {
  EXPECT_EQ(decode(encode(load_ri(Op::LDX, O2, O3, 56))), load_ri(Op::LDX, O2, O3, 56));
  EXPECT_EQ(decode(encode(store_ri(Op::STX, G2, O3, 88))), store_ri(Op::STX, G2, O3, 88));
  EXPECT_EQ(decode(encode(load_rr(Op::LDUB, G1, O0, O1))), load_rr(Op::LDUB, G1, O0, O1));
}

TEST(EncodeDecode, Sethi) {
  const Instr in = sethi(G1, 0x1FFFFF);
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(EncodeDecode, BranchAndCall) {
  const Instr b = branch(Cond::NE, -0x70, /*annul=*/true, /*pred_taken=*/false);
  EXPECT_EQ(decode(encode(b)), b);
  const Instr c = call(0x400);
  EXPECT_EQ(decode(encode(c)), c);
}

TEST(EncodeDecode, ImmediateRangeChecked) {
  EXPECT_THROW(encode(alu_ri(Op::ADD, O0, O0, 16384)), Error);
  EXPECT_THROW(encode(alu_ri(Op::ADD, O0, O0, -16385)), Error);
  EXPECT_NO_THROW(encode(alu_ri(Op::ADD, O0, O0, 16383)));
  EXPECT_NO_THROW(encode(alu_ri(Op::ADD, O0, O0, -16384)));
}

TEST(EncodeDecode, BranchRangeChecked) {
  EXPECT_THROW(encode(branch(Cond::A, 4 * (1 << 19))), Error);
  EXPECT_NO_THROW(encode(branch(Cond::A, 4 * ((1 << 19) - 1))));
  EXPECT_THROW(encode(branch(Cond::A, 2)), Error);  // not word aligned
}

TEST(Decode, InvalidEncodings) {
  EXPECT_EQ(decode(0).op, Op::ILLEGAL);                   // opcode 0
  EXPECT_EQ(decode(0xFC000000u).op, Op::ILLEGAL);         // opcode 63
  // Format A with i=0 and nonzero must-be-zero bits.
  u32 w = encode(alu_rr(Op::ADD, O0, O1, O2));
  w |= 1u << 7;
  EXPECT_EQ(decode(w).op, Op::ILLEGAL);
}

/// Round-trip every opcode through a representative instruction.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
  const Op op = static_cast<Op>(GetParam());
  Instr in;
  const OpInfo& info = op_info(op);
  if (op == Op::SETHI) {
    in = sethi(G3, 0x12345);
  } else if (info.is_branch) {
    in = branch(Cond::LE, 64);
  } else if (info.is_call) {
    in = call(-128);
  } else {
    in = alu_ri(op, O1, O2, 42);
  }
  EXPECT_EQ(decode(encode(in)), in) << info.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpcodeRoundTrip,
                         ::testing::Range(1, static_cast<int>(Op::kCount)));

TEST(OpInfo, Classification) {
  EXPECT_TRUE(op_info(Op::LDX).is_load);
  EXPECT_EQ(op_info(Op::LDX).mem_size, 8u);
  EXPECT_EQ(op_info(Op::LDUW).mem_size, 4u);
  EXPECT_EQ(op_info(Op::LDUB).mem_size, 1u);
  EXPECT_TRUE(op_info(Op::STX).is_store);
  EXPECT_TRUE(op_info(Op::PREFETCH).is_prefetch);
  EXPECT_TRUE(op_info(Op::BR).delayed);
  EXPECT_TRUE(op_info(Op::CALL).delayed);
  EXPECT_TRUE(op_info(Op::JMPL).delayed);
  EXPECT_FALSE(op_info(Op::ADD).delayed);
  EXPECT_TRUE(op_info(Op::SUBCC).sets_cc);
  EXPECT_TRUE(is_mem_op(Op::STB));
  EXPECT_FALSE(is_mem_op(Op::ADD));
}

TEST(Disasm, PaperStyle) {
  EXPECT_EQ(disassemble(load_ri(Op::LDX, O2, O3, 56), 0x1000031b0), "ldx [%o3 + 56], %o2");
  EXPECT_EQ(disassemble(store_ri(Op::STX, G2, O3, 88), 0), "stx %g2, [%o3 + 88]");
  EXPECT_EQ(disassemble(nop(), 0), "nop");
  EXPECT_EQ(disassemble(cmp_ri(O2, 1), 0), "cmp %o2, 1");
  EXPECT_EQ(disassemble(mov_rr(O5, O3), 0), "mov %o3, %o5");
  EXPECT_EQ(disassemble(alu_ri(Op::ADD, G3, G3, 1), 0), "inc %g3");
  EXPECT_EQ(disassemble(alu_rr(Op::ADD, G2, G1, G5), 0), "add %g1, %g5, %g2");
  EXPECT_EQ(disassemble(ret(), 0), "ret");
  EXPECT_EQ(disassemble(branch(Cond::E, 0x70, false, false), 0x1000031b0),
            "be,pn %xcc, 0x100003220");
  EXPECT_EQ(disassemble(branch(Cond::A, 0x30), 0x1000031e8), "ba 0x100003218");
  EXPECT_EQ(disassemble(prefetch_ri(G4, 64), 0), "prefetch [%g4 + 64]");
  EXPECT_EQ(disassemble(load_ri(Op::LDX, O0, O3, -8), 0), "ldx [%o3 - 8], %o0");
}

TEST(EaExpr, MemoryOpsOnly) {
  EXPECT_TRUE(ea_expr(load_ri(Op::LDX, O0, O1, 8)).has_value());
  EXPECT_TRUE(ea_expr(store_ri(Op::STW, O0, O1, 4)).has_value());
  EXPECT_TRUE(ea_expr(prefetch_ri(O1, 0)).has_value());
  EXPECT_FALSE(ea_expr(alu_ri(Op::ADD, O0, O1, 8)).has_value());
  const auto e = ea_expr(load_rr(Op::LDX, O0, O1, O2));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->rs1, O1);
  EXPECT_FALSE(e->has_imm);
  EXPECT_EQ(e->rs2, O2);
}

// ---------------------------------------------------------------------------
// Assembler

TEST(Assembler, ResolvesForwardAndBackwardBranches) {
  Assembler a(0x100000000);
  LabelId top = a.new_label("top");
  LabelId end = a.new_label("end");
  a.bind(top);
  a.emit(nop());
  a.emit_branch(Cond::A, end);
  a.emit(nop());
  a.emit_branch(Cond::NE, top);
  a.emit(nop());
  a.bind(end);
  a.emit(nop());
  auto out = a.finish();
  ASSERT_EQ(out.words.size(), 6u);
  const Instr fwd = decode(out.words[1]);
  EXPECT_EQ(fwd.disp, 4 * 4);  // from index 1 to index 5
  const Instr back = decode(out.words[3]);
  EXPECT_EQ(back.disp, -3 * 4);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a(0x100000000);
  LabelId l = a.new_label("never");
  a.emit_branch(Cond::A, l);
  a.emit(nop());
  EXPECT_THROW(a.finish(), Error);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a(0x100000000);
  LabelId l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), Error);
}

TEST(Assembler, BranchTargetTable) {
  Assembler a(0x100000000);
  LabelId loop = a.new_label("loop");
  LabelId fn = a.new_label("fn");
  a.bind(loop);
  a.emit(nop());
  a.emit_branch(Cond::A, loop);  // target: 0x100000000
  a.emit(nop());
  a.emit_call(fn);  // call at index 3 -> return join at base+4*3+8
  a.emit(nop());
  a.bind(fn);
  a.emit(nop());
  auto out = a.finish();
  // Targets: loop (base), fn (base+20), call-return join (base+20).
  ASSERT_EQ(out.branch_targets.size(), 2u);
  EXPECT_EQ(out.branch_targets[0], 0x100000000ull);
  EXPECT_EQ(out.branch_targets[1], 0x100000000ull + 20);
}

TEST(Assembler, Set64SmallIsSingleOr) {
  Assembler a(0x100000000);
  a.set64(O0, 42, G7);
  auto out = a.finish();
  ASSERT_EQ(out.words.size(), 1u);
  EXPECT_EQ(decode(out.words[0]), mov_ri(O0, 42));
}

class Set64Values : public ::testing::TestWithParam<i64> {};

TEST_P(Set64Values, MaterializesExactly) {
  // Verify by symbolic execution of the emitted instructions.
  Assembler a(0x100000000);
  a.set64(O0, GetParam(), G7);
  auto out = a.finish();
  ASSERT_LE(out.words.size(), 7u);
  u64 regs[32] = {};
  for (u32 w : out.words) {
    const Instr i = decode(w);
    const u64 b = i.has_imm ? static_cast<u64>(i.imm) : regs[i.rs2];
    switch (i.op) {
      case Op::SETHI: regs[i.rd] = static_cast<u64>(i.imm) << 14; break;
      case Op::OR: regs[i.rd] = regs[i.rs1] | b; break;
      case Op::SLL: regs[i.rd] = regs[i.rs1] << (b & 63); break;
      case Op::SUB: regs[i.rd] = regs[i.rs1] - b; break;
      default: FAIL() << "unexpected op in set64 expansion";
    }
    regs[0] = 0;
  }
  EXPECT_EQ(regs[O0], static_cast<u64>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Values, Set64Values,
                         ::testing::Values(0, 1, -1, 16383, 16384, -16385, 0x3FFFF000,
                                           0x7FFFFFFFFLL, -0x7FFFFFFFFLL,
                                           0x123456789ABCDEFLL, -0x123456789ABCDEFLL,
                                           static_cast<i64>(0x1000031B0ull)));

TEST(Assembler, PopLastPlain) {
  Assembler a(0x100000000);
  a.emit(alu_ri(Op::ADD, O1, O1, 1), 77);
  auto popped = a.pop_last_plain();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->second, 77u);
  EXPECT_EQ(a.position(), 0u);
}

TEST(Assembler, PopLastRefusesCcSetterBranchAndLabel) {
  Assembler a(0x100000000);
  a.emit(cmp_ri(O1, 0));
  EXPECT_FALSE(a.pop_last_plain().has_value());  // sets cc

  LabelId l = a.new_label();
  a.emit(alu_ri(Op::ADD, O1, O1, 1));
  a.bind(l);
  a.emit(alu_ri(Op::ADD, O2, O2, 1));
  EXPECT_FALSE(a.pop_last_plain().has_value());  // label bound at last instr
}

TEST(Assembler, PositionAndAddressTracking) {
  Assembler a(0x100000000);
  EXPECT_EQ(a.position(), 0u);
  a.emit(nop());
  a.emit(nop());
  EXPECT_EQ(a.position(), 2u);
  EXPECT_EQ(a.addr_of_position(0), 0x100000000ull);
  EXPECT_EQ(a.addr_of_position(2), 0x100000008ull);
}

TEST(Assembler, TagsTravelWithInstructions) {
  Assembler a(0x100000000);
  a.emit(nop(), 111);
  a.emit(mov_ri(O0, 1), 222);
  auto out = a.finish();
  ASSERT_EQ(out.tags.size(), 2u);
  EXPECT_EQ(out.tags[0], 111u);
  EXPECT_EQ(out.tags[1], 222u);
}

TEST(Assembler, LabelAddrsReported) {
  Assembler a(0x100000000);
  LabelId l0 = a.new_label("a");
  LabelId l1 = a.new_label("b");
  a.bind(l0);
  a.emit(nop());
  a.bind(l1);
  a.emit(nop());
  auto out = a.finish();
  ASSERT_EQ(out.label_addrs.size(), 2u);
  EXPECT_EQ(out.label_addrs[l0], 0x100000000ull);
  EXPECT_EQ(out.label_addrs[l1], 0x100000004ull);
}

TEST(Disasm, SethiAndJmplForms) {
  EXPECT_EQ(disassemble(sethi(G1, 0x20000), 0), "sethi %hi(0x80000000), %g1");
  EXPECT_EQ(disassemble(jmpl(O1, O2, 16), 0), "jmpl %o2 + 16, %o1");
  EXPECT_EQ(disassemble(hcall(3), 0), "hcall 3");
  EXPECT_EQ(disassemble(load_rr(Op::LDX, O0, O1, O2), 0), "ldx [%o1 + %o2], %o0");
  EXPECT_EQ(disassemble(load_rr(Op::LDX, O0, O1, G0), 0), "ldx [%o1], %o0");
}

TEST(EncodeDecode, RegisterBoundsChecked) {
  Instr bad = alu_rr(Op::ADD, O0, O1, O2);
  bad.rd = 32;
  EXPECT_THROW(encode(bad), Error);
}

}  // namespace
}  // namespace dsprof::isa
