#include <gtest/gtest.h>

#include <functional>

#include "isa/assembler.hpp"
#include "machine/cpu.hpp"
#include "machine/hostcall.hpp"

namespace dsprof::machine {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Instr;
using isa::Op;
using namespace isa;  // register names

/// Assemble a small program and prepare a CPU to run it.
class TestMachine {
 public:
  explicit TestMachine(const std::function<void(Assembler&)>& build, CpuConfig cfg = {}) {
    Assembler a(mem::kTextBase);
    build(a);
    // Terminate with exit(%o0) in case the program falls through.
    a.emit(hcall(static_cast<i64>(HostCall::Exit)));
    auto out = a.finish();
    mem_.add_segment({"text", mem::SegKind::Text, mem::kTextBase,
                      round_up(out.words.size() * 4, 8), false, true});
    mem_.add_segment({"data", mem::SegKind::Data, mem::kDataBase, 0x10000, true, false});
    mem_.add_segment({"heap", mem::SegKind::Heap, mem::kHeapBase, 0x1000000, true, false});
    mem_.add_segment({"stack", mem::SegKind::Stack, mem::kStackTop - mem::kStackSize,
                      mem::kStackSize + 0x4000, true, false});
    mem_.write_bytes(mem::kTextBase, out.words.data(), out.words.size() * 4);
    cpu_ = std::make_unique<Cpu>(mem_, cfg);
    cpu_->set_pc(mem::kTextBase);
  }

  RunResult run(u64 max = 100000) { return cpu_->run(max); }
  Cpu& cpu() { return *cpu_; }
  mem::Memory& mem() { return mem_; }

 private:
  mem::Memory mem_;
  std::unique_ptr<Cpu> cpu_;
};

/// Run a straight-line instruction sequence and return the final value of o0.
u64 eval(const std::vector<Instr>& prog) {
  TestMachine tm([&](Assembler& a) {
    for (const auto& i : prog) a.emit(i);
  });
  const RunResult r = tm.run();
  EXPECT_TRUE(r.halted);
  return static_cast<u64>(r.exit_code);
}

TEST(Exec, Arithmetic) {
  EXPECT_EQ(eval({mov_ri(O0, 5), alu_ri(Op::ADD, O0, O0, 7)}), 12u);
  EXPECT_EQ(eval({mov_ri(O0, 5), alu_ri(Op::SUB, O0, O0, 7)}), static_cast<u64>(-2));
  EXPECT_EQ(eval({mov_ri(O0, 6), alu_ri(Op::MULX, O0, O0, -7)}), static_cast<u64>(-42));
  EXPECT_EQ(eval({mov_ri(O0, -41), alu_ri(Op::SDIVX, O0, O0, 7)}), static_cast<u64>(-5));
  EXPECT_EQ(eval({mov_ri(O1, -1), alu_ri(Op::SRL, O0, O1, 60)}), 15u);
  EXPECT_EQ(eval({mov_ri(O1, -16), alu_ri(Op::SRA, O0, O1, 2)}), static_cast<u64>(-4));
  EXPECT_EQ(eval({mov_ri(O1, 3), alu_ri(Op::SLL, O0, O1, 4)}), 48u);
  EXPECT_EQ(eval({mov_ri(O1, 0b1100), alu_ri(Op::AND, O0, O1, 0b1010)}), 0b1000u);
  EXPECT_EQ(eval({mov_ri(O1, 0b1100), alu_ri(Op::ANDN, O0, O1, 0b1010)}), 0b0100u);
  EXPECT_EQ(eval({mov_ri(O1, 0b1100), alu_ri(Op::XOR, O0, O1, 0b1010)}), 0b0110u);
}

TEST(Exec, UdivxUnsigned) {
  // -1 as unsigned divided by 2.
  EXPECT_EQ(eval({mov_ri(O1, -1), alu_ri(Op::UDIVX, O0, O1, 2)}), 0x7FFFFFFFFFFFFFFFull);
}

TEST(Exec, G0IsAlwaysZero) {
  EXPECT_EQ(eval({mov_ri(G0, 55), mov_rr(O0, G0)}), 0u);
}

TEST(Exec, Sethi) {
  EXPECT_EQ(eval({sethi(O0, 0x1)}), u64{1} << 14);
}

TEST(Exec, DivByZeroFaults) {
  TestMachine tm([](Assembler& a) {
    a.emit(mov_ri(O1, 1));
    a.emit(alu_ri(Op::SDIVX, O0, O1, 0));
  });
  EXPECT_THROW(tm.run(), Error);
}

TEST(Exec, IllegalInstructionFaults) {
  mem::Memory m;
  m.add_segment({"text", mem::SegKind::Text, mem::kTextBase, 0x100, false, true});
  const u32 bad = 0;
  m.write_bytes(mem::kTextBase, &bad, 4);
  Cpu cpu(m, CpuConfig{});
  cpu.set_pc(mem::kTextBase);
  EXPECT_THROW(cpu.run(10), Error);
}

TEST(Exec, LoadStoreWidths) {
  EXPECT_EQ(eval({
                mov_ri(O1, 0),  // address base built below
                sethi(O2, mem::kHeapBase >> 14),
                mov_ri(O3, -2),  // 0xFFFF...FE
                store_ri(Op::STX, O3, O2, 0),
                load_ri(Op::LDUB, O0, O2, 0),  // low byte, zero-extended
            }),
            0xFEu);
  EXPECT_EQ(eval({
                sethi(O2, mem::kHeapBase >> 14),
                mov_ri(O3, -2),
                store_ri(Op::STX, O3, O2, 0),
                load_ri(Op::LDUW, O0, O2, 0),
            }),
            0xFFFFFFFEu);
}

TEST(Exec, ConditionalBranches) {
  struct Case {
    i64 a, b;
    Cond cond;
    bool taken;
  };
  const Case cases[] = {
      {1, 2, Cond::L, true},    {2, 1, Cond::L, false},   {1, 1, Cond::LE, true},
      {2, 1, Cond::G, true},    {1, 1, Cond::G, false},   {1, 1, Cond::GE, true},
      {1, 1, Cond::E, true},    {1, 2, Cond::E, false},   {1, 2, Cond::NE, true},
      {-1, 1, Cond::L, true},   {-1, 1, Cond::LU, false}, // unsigned: -1 is huge
      {1, 2, Cond::LU, true},   {1, 2, Cond::GU, false},  {2, 1, Cond::GU, true},
      {1, 1, Cond::LEU, true},  {1, 1, Cond::GEU, true},  {1, 2, Cond::A, true},
  };
  for (const Case& c : cases) {
    TestMachine tm([&](Assembler& a) {
      auto l = a.new_label("taken");
      a.emit(mov_ri(O1, c.a));
      a.emit(mov_ri(O2, c.b));
      a.emit(cmp_rr(O1, O2));
      a.emit_branch(c.cond, l);
      a.emit(nop());          // delay slot
      a.emit(mov_ri(O0, 0));  // fall-through
      a.emit(hcall(0));
      a.bind(l);
      a.emit(mov_ri(O0, 1));
    });
    const RunResult r = tm.run();
    EXPECT_EQ(r.exit_code, c.taken ? 1 : 0)
        << "a=" << c.a << " b=" << c.b << " cond=" << isa::cond_name(c.cond);
  }
}

TEST(Exec, DelaySlotExecutesOnTakenBranch) {
  TestMachine tm([](Assembler& a) {
    auto l = a.new_label();
    a.emit(mov_ri(O0, 0));
    a.emit_branch(Cond::A, l);
    a.emit(alu_ri(Op::ADD, O0, O0, 5));  // delay slot: must execute
    a.emit(alu_ri(Op::ADD, O0, O0, 100));  // skipped
    a.bind(l);
  });
  EXPECT_EQ(tm.run().exit_code, 5);
}

TEST(Exec, AnnulledSlotSkippedWhenNotTaken) {
  TestMachine tm([](Assembler& a) {
    auto l = a.new_label();
    a.emit(mov_ri(O0, 0));
    a.emit(cmp_ri(O0, 99));           // not equal
    a.emit_branch(Cond::E, l, /*annul=*/true);
    a.emit(alu_ri(Op::ADD, O0, O0, 5));  // annulled: must NOT execute
    a.emit(alu_ri(Op::ADD, O0, O0, 1));
    a.bind(l);
  });
  EXPECT_EQ(tm.run().exit_code, 1);
}

TEST(Exec, AnnulledSlotExecutesWhenTaken) {
  TestMachine tm([](Assembler& a) {
    auto l = a.new_label();
    a.emit(mov_ri(O0, 0));
    a.emit(cmp_ri(O0, 0));
    a.emit_branch(Cond::E, l, /*annul=*/true);
    a.emit(alu_ri(Op::ADD, O0, O0, 5));  // conditional+annul, taken: executes
    a.emit(alu_ri(Op::ADD, O0, O0, 100));
    a.bind(l);
  });
  EXPECT_EQ(tm.run().exit_code, 5);
}

TEST(Exec, BaAnnulAlwaysSkipsSlot) {
  TestMachine tm([](Assembler& a) {
    auto l = a.new_label();
    a.emit(mov_ri(O0, 0));
    a.emit_branch(Cond::A, l, /*annul=*/true);
    a.emit(alu_ri(Op::ADD, O0, O0, 5));  // ba,a: always annulled
    a.bind(l);
  });
  EXPECT_EQ(tm.run().exit_code, 0);
}

TEST(Exec, CallAndRet) {
  TestMachine tm([](Assembler& a) {
    auto fn = a.new_label("fn");
    a.emit(mov_ri(O0, 1));
    a.emit_call(fn);
    a.emit(nop());                        // delay slot
    a.emit(alu_ri(Op::ADD, O0, O0, 100));  // after return
    a.emit(hcall(0));
    a.bind(fn);
    a.emit(alu_ri(Op::ADD, O0, O0, 10));
    a.emit(ret());
    a.emit(nop());
  });
  EXPECT_EQ(tm.run().exit_code, 111);
}

TEST(Exec, HostCallsOutputAndTrace) {
  TestMachine tm([](Assembler& a) {
    a.emit(mov_ri(O0, 'h'));
    a.emit(hcall(static_cast<i64>(HostCall::PutC)));
    a.emit(mov_ri(O0, -42));
    a.emit(hcall(static_cast<i64>(HostCall::PutI)));
    a.emit(mov_ri(O0, 777));
    a.emit(hcall(static_cast<i64>(HostCall::Trace)));
    a.emit(mov_ri(O1, 32));
    a.emit(mov_ri(O0, 0x3000));
    a.emit(hcall(static_cast<i64>(HostCall::NoteAlloc)));
    a.emit(mov_ri(O0, 0));
  });
  tm.run();
  EXPECT_EQ(tm.cpu().output(), "h-42");
  ASSERT_EQ(tm.cpu().trace().size(), 1u);
  EXPECT_EQ(tm.cpu().trace()[0], 777);
  ASSERT_EQ(tm.cpu().allocations().size(), 1u);
  EXPECT_EQ(tm.cpu().allocations()[0].addr, 0x3000u);
  EXPECT_EQ(tm.cpu().allocations()[0].size, 32u);
  // The site PC is the NoteAlloc hcall's own PC (word 7 of the program).
  EXPECT_EQ(tm.cpu().allocations()[0].site_pc, tm.cpu().allocations()[0].site_pc & ~u64{3});
  EXPECT_NE(tm.cpu().allocations()[0].site_pc, 0u);
}

TEST(Exec, LoopCountsInstructionsAndCycles) {
  // Loop 100 times: head cmp/branch + body.
  TestMachine tm([](Assembler& a) {
    auto head = a.new_label();
    auto end = a.new_label();
    a.emit(mov_ri(O1, 100));
    a.emit(mov_ri(O0, 0));
    a.bind(head);
    a.emit(cmp_ri(O1, 0));
    a.emit_branch(Cond::E, end);
    a.emit(nop());
    a.emit(alu_ri(Op::SUB, O1, O1, 1));
    a.emit(alu_ri(Op::ADD, O0, O0, 2));
    a.emit_branch(Cond::A, head);
    a.emit(nop());
    a.bind(end);
  });
  const RunResult r = tm.run();
  EXPECT_EQ(r.exit_code, 200);
  EXPECT_GT(r.instructions, 600u);
  EXPECT_GE(r.cycles, r.instructions);
}

TEST(Counters, EventTotalsTrackLoads) {
  TestMachine tm([](Assembler& a) {
    auto head = a.new_label();
    auto end = a.new_label();
    a.emit(sethi(O2, mem::kHeapBase >> 14));
    a.emit(mov_ri(O1, 1000));
    a.bind(head);
    a.emit(cmp_ri(O1, 0));
    a.emit_branch(Cond::E, end);
    a.emit(nop());
    a.emit(load_ri(Op::LDX, O3, O2, 0));  // same address: hits after first
    a.emit(alu_ri(Op::SUB, O1, O1, 1));
    a.emit_branch(Cond::A, head);
    a.emit(nop());
    a.bind(end);
    a.emit(mov_ri(O0, 0));
  });
  tm.run(100000);
  EXPECT_EQ(tm.cpu().event_total(HwEvent::DC_rd_miss), 1u);
  EXPECT_EQ(tm.cpu().event_total(HwEvent::EC_rd_miss), 1u);
  EXPECT_EQ(tm.cpu().event_total(HwEvent::DTLB_miss), 1u);
  EXPECT_GT(tm.cpu().event_total(HwEvent::Instr_cnt), 6000u);
  EXPECT_EQ(tm.cpu().event_total(HwEvent::Instr_cnt), tm.cpu().total_instructions());
  EXPECT_EQ(tm.cpu().event_total(HwEvent::Cycle_cnt), tm.cpu().total_cycles());
}

TEST(Counters, PicConstraintsEnforced) {
  mem::Memory m;
  m.add_segment({"text", mem::SegKind::Text, mem::kTextBase, 0x100, false, true});
  Cpu cpu(m, CpuConfig{});
  EXPECT_THROW(cpu.configure_pic(1, HwEvent::EC_stall_cycles, 100), Error);  // PIC0 only
  EXPECT_THROW(cpu.configure_pic(0, HwEvent::EC_rd_miss, 100), Error);       // PIC1 only
  EXPECT_NO_THROW(cpu.configure_pic(0, HwEvent::EC_stall_cycles, 100));
  EXPECT_NO_THROW(cpu.configure_pic(1, HwEvent::EC_rd_miss, 100));
  EXPECT_THROW(cpu.configure_pic(0, HwEvent::Cycle_cnt, 0), Error);  // zero interval
}

TEST(Counters, OverflowCountMatchesInterval) {
  std::vector<OverflowDelivery> deliveries;
  TestMachine tm([](Assembler& a) {
    auto head = a.new_label();
    auto end = a.new_label();
    a.emit(mov_ri(O1, 5000));
    a.bind(head);
    a.emit(cmp_ri(O1, 0));
    a.emit_branch(Cond::E, end);
    a.emit(nop());
    a.emit(alu_ri(Op::SUB, O1, O1, 1));
    a.emit_branch(Cond::A, head);
    a.emit(nop());
    a.bind(end);
    a.emit(mov_ri(O0, 0));
  });
  tm.cpu().configure_pic(0, HwEvent::Instr_cnt, 997);
  tm.cpu().on_overflow = [&](const OverflowDelivery& d) { deliveries.push_back(d); };
  tm.run(1000000);
  const u64 instrs = tm.cpu().total_instructions();
  const u64 expected = instrs / 997;
  EXPECT_GE(deliveries.size() + 1, expected);
  EXPECT_LE(deliveries.size(), expected + 1);
  for (const auto& d : deliveries) {
    EXPECT_EQ(d.event, HwEvent::Instr_cnt);
    EXPECT_EQ(d.interval, 997u);
    EXPECT_EQ(d.pic, 0u);
  }
}

TEST(Counters, DtlbMissesArePrecise) {
  // DTLB skid is 0: the delivered PC is the instruction right after the
  // triggering load (in execution order), and ground truth confirms it.
  std::vector<OverflowDelivery> deliveries;
  TestMachine tm([](Assembler& a) {
    auto head = a.new_label();
    auto end = a.new_label();
    a.emit(sethi(O2, mem::kHeapBase >> 14));
    a.emit(mov_ri(O1, 300));
    a.emit(mov_ri(O4, 0));
    a.bind(head);
    a.emit(cmp_ri(O1, 0));
    a.emit_branch(Cond::E, end);
    a.emit(nop());
    // Each iteration touches a new page: every load DTLB-misses eventually.
    a.emit(load_ri(Op::LDX, O3, O2, 0));
    a.emit(sethi(O5, 1));  // 16384 = 2 pages of 8K
    a.emit(alu_rr(Op::ADD, O2, O2, O5));
    a.emit(alu_ri(Op::SUB, O1, O1, 1));
    a.emit_branch(Cond::A, head);
    a.emit(nop());
    a.bind(end);
    a.emit(mov_ri(O0, 0));
  });
  tm.cpu().configure_pic(1, HwEvent::DTLB_miss, 7);
  tm.cpu().on_overflow = [&](const OverflowDelivery& d) { deliveries.push_back(d); };
  tm.run(1000000);
  ASSERT_GT(deliveries.size(), 10u);
  const auto& truth = tm.cpu().truth_log();
  ASSERT_EQ(truth.size(), deliveries.size());
  for (size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_EQ(truth[i].skid, 0u);
    // Delivered PC is the next instruction after the triggering load.
    EXPECT_EQ(deliveries[i].delivered_pc, truth[i].trigger_pc + 4);
    EXPECT_TRUE(truth[i].ea_valid);
  }
}

TEST(Counters, SkidWithinConfiguredBounds) {
  TestMachine tm(
      [](Assembler& a) {
        auto head = a.new_label();
        auto end = a.new_label();
        a.emit(sethi(O2, mem::kHeapBase >> 14));
        a.emit(mov_ri(O1, 2000));
        a.bind(head);
        a.emit(cmp_ri(O1, 0));
        a.emit_branch(Cond::E, end);
        a.emit(nop());
        a.emit(load_ri(Op::LDX, O3, O2, 0));
        a.emit(alu_ri(Op::ADD, O2, O2, 64));
        a.emit(alu_ri(Op::SUB, O1, O1, 1));
        a.emit_branch(Cond::A, head);
        a.emit(nop());
        a.bind(end);
        a.emit(mov_ri(O0, 0));
      });
  tm.cpu().configure_pic(0, HwEvent::DC_rd_miss, 13);
  std::vector<OverflowDelivery> deliveries;
  tm.cpu().on_overflow = [&](const OverflowDelivery& d) { deliveries.push_back(d); };
  tm.run(1000000);
  ASSERT_GT(deliveries.size(), 20u);
  const HwEventInfo& info = hw_event_info(HwEvent::DC_rd_miss);
  for (const auto& t : tm.cpu().truth_log()) {
    EXPECT_GE(t.skid, info.skid_min);
    EXPECT_LE(t.skid, info.skid_max);
  }
}

TEST(Counters, ClockProfilingSamples) {
  TestMachine tm([](Assembler& a) {
    auto head = a.new_label();
    auto end = a.new_label();
    a.emit(mov_ri(O1, 16000));
    a.bind(head);
    a.emit(cmp_ri(O1, 0));
    a.emit_branch(Cond::E, end);
    a.emit(nop());
    a.emit(alu_ri(Op::SUB, O1, O1, 1));
    a.emit_branch(Cond::A, head);
    a.emit(nop());
    a.bind(end);
    a.emit(mov_ri(O0, 0));
  });
  tm.cpu().configure_clock_profiling(1009);
  size_t samples = 0;
  tm.cpu().on_overflow = [&](const OverflowDelivery& d) {
    EXPECT_EQ(d.pic, kClockPic);
    ++samples;
  };
  tm.run(10000000);
  const u64 expected = tm.cpu().total_cycles() / 1009;
  EXPECT_GE(samples + 2, expected);
  EXPECT_LE(samples, expected + 1);
}

TEST(Counters, SkidScaleZeroMakesEverythingPrecise) {
  CpuConfig cfg;
  cfg.skid_scale = 0.0;
  TestMachine tm(
      [](Assembler& a) {
        auto head = a.new_label();
        auto end = a.new_label();
        a.emit(sethi(O2, mem::kHeapBase >> 14));
        a.emit(mov_ri(O1, 1000));
        a.bind(head);
        a.emit(cmp_ri(O1, 0));
        a.emit_branch(Cond::E, end);
        a.emit(nop());
        a.emit(load_ri(Op::LDX, O3, O2, 0));
        a.emit(alu_ri(Op::ADD, O2, O2, 64));
        a.emit(alu_ri(Op::SUB, O1, O1, 1));
        a.emit_branch(Cond::A, head);
        a.emit(nop());
        a.bind(end);
        a.emit(mov_ri(O0, 0));
      },
      cfg);
  tm.cpu().configure_pic(0, HwEvent::DC_rd_miss, 7);
  tm.run(1000000);
  for (const auto& t : tm.cpu().truth_log()) EXPECT_EQ(t.skid, 0u);
}

TEST(HwEventTable, NamesRoundTrip) {
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    const HwEvent ev = static_cast<HwEvent>(i);
    EXPECT_EQ(hw_event_by_name(hw_event_info(ev).name), ev);
  }
  EXPECT_THROW(hw_event_by_name("bogus"), Error);
}

TEST(HwEventTable, SkidOrderingMatchesPaper) {
  // DTLB precise; E$ refs skid the most (paper §3.2.5 effectiveness order).
  EXPECT_EQ(hw_event_info(HwEvent::DTLB_miss).skid_max, 0u);
  EXPECT_GT(hw_event_info(HwEvent::EC_ref).skid_max,
            hw_event_info(HwEvent::EC_rd_miss).skid_max);
}

}  // namespace
}  // namespace dsprof::machine
