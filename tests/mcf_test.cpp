#include <gtest/gtest.h>

#include <map>

#include "mcf/generator.hpp"
#include "mcf/ssp.hpp"

namespace dsprof::mcf {
namespace {

TEST(Layout, NodeMatchesPaperFigure7) {
  EXPECT_EQ(sizeof(Node), 120u);
  EXPECT_EQ(offsetof(Node, number), 0u);
  EXPECT_EQ(offsetof(Node, ident), 8u);
  EXPECT_EQ(offsetof(Node, pred), 16u);
  EXPECT_EQ(offsetof(Node, child), 24u);
  EXPECT_EQ(offsetof(Node, sibling), 32u);
  EXPECT_EQ(offsetof(Node, sibling_prev), 40u);
  EXPECT_EQ(offsetof(Node, depth), 48u);
  EXPECT_EQ(offsetof(Node, orientation), 56u);
  EXPECT_EQ(offsetof(Node, basic_arc), 64u);
  EXPECT_EQ(offsetof(Node, firstout), 72u);
  EXPECT_EQ(offsetof(Node, firstin), 80u);
  EXPECT_EQ(offsetof(Node, potential), 88u);
  EXPECT_EQ(offsetof(Node, flow), 96u);
  EXPECT_EQ(offsetof(Node, mark), 104u);
  EXPECT_EQ(offsetof(Node, time), 112u);
}

TEST(Layout, ArcCostAtPaperOffset) {
  EXPECT_EQ(sizeof(Arc), 64u);
  EXPECT_EQ(offsetof(Arc, cost), 32u);
  EXPECT_EQ(offsetof(Arc, ident), 16u);
  EXPECT_EQ(offsetof(Arc, flow), 24u);
}

Network tiny_network() {
  // 4 nodes: 1 supplies 2 units, 4 demands 2; arcs form two paths.
  Network net;
  net.n = 4;
  net.supply = {0, 2, 0, 0, -2};
  net.cands.push_back({1, 2, 1, 2});  // cheap path 1-2-4
  net.cands.push_back({2, 4, 1, 2});
  net.cands.push_back({1, 3, 5, 2});  // expensive path 1-3-4
  net.cands.push_back({3, 4, 5, 2});
  net.arcs.assign(net.cands.size(), Arc{});
  return net;
}

TEST(Simplex, TinyInstanceOptimal) {
  Network net = tiny_network();
  SimplexParams p;
  const cost_t cost = solve(net, p, 1.0);
  EXPECT_EQ(cost, 4);  // 2 units over the cheap path, cost (1+1)*2
  EXPECT_TRUE(primal_feasible(net));
  EXPECT_EQ(dual_feasible(net), 0);
}

TEST(Simplex, CapacityForcesSplit) {
  // Cheap path capacity 1: second unit must use the expensive path.
  Network net = tiny_network();
  net.cands[0].cap = 1;
  net.cands[1].cap = 1;
  SimplexParams p;
  const cost_t cost = solve(net, p, 1.0);
  EXPECT_EQ(cost, 2 + 10);
  EXPECT_TRUE(primal_feasible(net));
  EXPECT_EQ(dual_feasible(net), 0);
}

TEST(Simplex, RefreshPotentialMatchesIncrementalPotentials) {
  GeneratorParams gp;
  gp.seed = 5;
  gp.nodes = 200;
  gp.arcs = 1200;
  Network net = generate_instance(gp);
  primal_start_artificial(net);
  activate_arcs(net, 600);
  SimplexParams p;
  p.refresh_gap = 1000000;  // no refresh during the run
  primal_net_simplex(net, p);
  // Record potentials maintained incrementally by update_tree...
  std::vector<cost_t> incremental;
  for (const auto& nd : net.nodes) incremental.push_back(nd.potential);
  // ...then recompute from scratch; they must agree.
  refresh_potential(net);
  for (size_t i = 0; i < net.nodes.size(); ++i) {
    EXPECT_EQ(net.nodes[i].potential, incremental[i]) << "node " << i;
  }
}

TEST(Simplex, RefreshPotentialCountsDownNodes) {
  GeneratorParams gp;
  gp.nodes = 50;
  gp.arcs = 200;
  Network net = generate_instance(gp);
  primal_start_artificial(net);
  i64 down = 0;
  for (i64 i = 1; i <= net.n; ++i) {
    if (net.nodes[static_cast<size_t>(i)].orientation == kDown) ++down;
  }
  EXPECT_EQ(refresh_potential(net), down);
}

void check_tree_invariants(Network& net) {
  // Every node except the root has a basic arc connecting it to its pred,
  // depth is pred's +1, and the child/sibling lists are consistent.
  i64 reachable = 0;
  for (i64 i = 1; i <= net.n; ++i) {
    Node* v = &net.nodes[static_cast<size_t>(i)];
    ASSERT_NE(v->pred, nullptr) << "node " << i;
    ASSERT_NE(v->basic_arc, nullptr);
    EXPECT_EQ(v->depth, v->pred->depth + 1);
    EXPECT_EQ(v->basic_arc->ident, kBasic);
    const bool connects = (v->basic_arc->tail == v && v->basic_arc->head == v->pred) ||
                          (v->basic_arc->head == v && v->basic_arc->tail == v->pred);
    EXPECT_TRUE(connects) << "basic arc of node " << i << " does not connect to pred";
    EXPECT_EQ(v->orientation == kUp, v->basic_arc->tail == v);
    // v must be in pred's child list exactly once.
    int count = 0;
    for (Node* c = v->pred->child; c; c = c->sibling) {
      if (c == v) ++count;
      if (c->sibling) EXPECT_EQ(c->sibling->sibling_prev, c);
    }
    EXPECT_EQ(count, 1) << "node " << i << " not in its parent's child list once";
    ++reachable;
  }
  EXPECT_EQ(reachable, net.n);
}

void check_flow_conservation(Network& net) {
  std::map<const Node*, flow_t> balance;
  auto apply = [&](const Arc& a) {
    balance[a.tail] -= a.flow;
    balance[a.head] += a.flow;
    EXPECT_GE(a.flow, 0);
    EXPECT_LE(a.flow, a.cap);
  };
  for (i64 i = 0; i < net.m; ++i) apply(net.arcs[static_cast<size_t>(i)]);
  for (const Arc& a : net.dummy_arcs) apply(a);
  for (i64 i = 1; i <= net.n; ++i) {
    const Node* v = &net.nodes[static_cast<size_t>(i)];
    EXPECT_EQ(balance[v], -net.supply[static_cast<size_t>(i)]) << "node " << i;
  }
}

class SimplexVsSsp : public ::testing::TestWithParam<u64> {};

TEST_P(SimplexVsSsp, ObjectivesMatchAndInvariantsHold) {
  GeneratorParams gp;
  gp.seed = GetParam();
  gp.nodes = 120;
  gp.arcs = 700;
  gp.sources = 4;
  gp.units = 3;
  gp.window = 24;
  Network net = generate_instance(gp);
  SimplexParams p;
  const cost_t simplex_cost = solve(net, p, 0.3);
  EXPECT_TRUE(primal_feasible(net));
  EXPECT_EQ(dual_feasible(net), 0);
  check_tree_invariants(net);
  check_flow_conservation(net);

  Network ref = generate_instance(gp);
  const SspResult oracle = ssp_solve(ref.n, ref.supply, ref.cands);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_EQ(simplex_cost, oracle.cost) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVsSsp, ::testing::Range<u64>(1, 13));

TEST(Simplex, LargerInstanceSolves) {
  GeneratorParams gp;
  gp.seed = 99;
  gp.nodes = 2000;
  gp.arcs = 12000;
  Network net = generate_instance(gp);
  SimplexParams p;
  const cost_t cost = solve(net, p);
  EXPECT_GT(cost, 0);
  EXPECT_TRUE(primal_feasible(net));
  EXPECT_EQ(dual_feasible(net), 0);
  EXPECT_GT(net.iterations, 100u);
  EXPECT_GT(net.refreshes, 10u);
}

TEST(Simplex, DeterministicAcrossRuns) {
  GeneratorParams gp;
  gp.seed = 7;
  gp.nodes = 300;
  gp.arcs = 1500;
  Network a = generate_instance(gp);
  Network b = generate_instance(gp);
  SimplexParams p;
  EXPECT_EQ(solve(a, p), solve(b, p));
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Simplex, WriteCirculationsListsPositiveFlows) {
  Network net = tiny_network();
  SimplexParams p;
  solve(net, p, 1.0);
  const std::string out = write_circulations(net);
  EXPECT_NE(out.find("1 -> 2 flow 2"), std::string::npos);
}

TEST(Generator, FeasibilityChainPresent) {
  GeneratorParams gp;
  gp.nodes = 50;
  gp.arcs = 100;
  Network net = generate_instance(gp);
  // First n-1 candidates are the chain i -> i+1.
  for (i64 i = 0; i < gp.nodes - 1; ++i) {
    EXPECT_EQ(net.cands[static_cast<size_t>(i)].tail, i + 1);
    EXPECT_EQ(net.cands[static_cast<size_t>(i)].head, i + 2);
  }
  // All arcs point forward in time (DAG).
  for (const auto& c : net.cands) {
    EXPECT_LT(c.tail, c.head);
    EXPECT_GE(c.cost, 0);
    EXPECT_GT(c.cap, 0);
  }
}

TEST(Generator, SupplyBalances) {
  GeneratorParams gp;
  gp.nodes = 100;
  gp.sources = 5;
  gp.units = 7;
  Network net = generate_instance(gp);
  flow_t total = 0;
  for (flow_t s : net.supply) total += s;
  EXPECT_EQ(total, 0);
}

TEST(PriceOut, ActivatesOnlyNegativeReducedCost) {
  GeneratorParams gp;
  gp.seed = 3;
  gp.nodes = 80;
  gp.arcs = 400;
  Network net = generate_instance(gp);
  primal_start_artificial(net);
  activate_arcs(net, 100);
  SimplexParams p;
  primal_net_simplex(net, p);
  const i64 m_before = net.m;
  const i64 added = price_out_impl(net, 1000000);
  EXPECT_EQ(net.m, m_before + added);
  // Newly added arcs must have had negative reduced cost at entry.
  for (i64 i = m_before; i < net.m; ++i) {
    const Arc& a = net.arcs[static_cast<size_t>(i)];
    EXPECT_EQ(a.ident, kAtLower);
    EXPECT_EQ(a.flow, 0);
  }
}

TEST(Suspend, ObjectiveUnchangedAndArcsLeaveTheActiveSet) {
  GeneratorParams gp;
  gp.seed = 12;
  gp.nodes = 200;
  gp.arcs = 1500;
  SimplexParams plain;
  Network a = generate_instance(gp);
  const cost_t base = solve(a, plain, 0.5);

  SimplexParams with_suspend = plain;
  with_suspend.suspend_threshold = gp.max_cost;
  Network b = generate_instance(gp);
  const cost_t suspended = solve(b, with_suspend, 0.5);

  EXPECT_EQ(base, suspended);
  EXPECT_TRUE(primal_feasible(b));
  EXPECT_EQ(dual_feasible(b), 0);
  // suspend_impl actually shrank the active set below the no-suspend run's.
  EXPECT_LT(b.m, a.m);
  // The suspended region is exactly the complement of the active prefix.
  for (i64 i = 0; i < b.total_arcs; ++i) {
    const Arc& arc = b.arcs[static_cast<size_t>(i)];
    if (i < b.m) {
      EXPECT_NE(arc.ident, kSuspended) << i;
    } else {
      EXPECT_EQ(arc.ident, kSuspended) << i;
      EXPECT_EQ(arc.flow, 0) << i;
    }
  }
}

TEST(Suspend, BasicArcPointersSurviveTheSwaps) {
  GeneratorParams gp;
  gp.seed = 9;
  gp.nodes = 120;
  gp.arcs = 800;
  Network net = generate_instance(gp);
  primal_start_artificial(net);
  activate_arcs(net, 500);
  SimplexParams p;
  primal_net_simplex(net, p);
  // Suspend aggressively, then verify every node's basic arc still connects
  // the node to its parent.
  suspend_impl(net, 0);
  for (i64 i = 1; i <= net.n; ++i) {
    const Node* v = &net.nodes[static_cast<size_t>(i)];
    ASSERT_NE(v->basic_arc, nullptr);
    EXPECT_EQ(v->basic_arc->ident, kBasic) << "node " << i;
    const bool connects = (v->basic_arc->tail == v && v->basic_arc->head == v->pred) ||
                          (v->basic_arc->head == v && v->basic_arc->tail == v->pred);
    EXPECT_TRUE(connects) << "node " << i;
  }
  // And the network still re-optimizes to the true optimum afterwards.
  const cost_t cost = global_opt(net, p);
  Network ref = generate_instance(gp);
  const SspResult oracle = ssp_solve(ref.n, ref.supply, ref.cands);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_EQ(cost, oracle.cost);
}

TEST(Ssp, OracleSolvesTiny) {
  Network net = tiny_network();
  const SspResult r = ssp_solve(net.n, net.supply, net.cands);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 4);
}

TEST(Ssp, DetectsInfeasible) {
  std::vector<flow_t> supply = {0, 1, -1};
  std::vector<CandArc> cands;  // no arcs at all
  const SspResult r = ssp_solve(2, supply, cands);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace dsprof::mcf
