#include <gtest/gtest.h>

#include "machine/cpu.hpp"
#include "mcf/net.hpp"
#include "mcf/ssp.hpp"
#include "mcfsim/mcfsim.hpp"

namespace dsprof::mcfsim {
namespace {

struct SimRun {
  i64 objective = 0;
  i64 violations = 0;
  i64 art_flow = 0;
  i64 iterations = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  std::string output;
};

SimRun run_sim(const sym::Image& img, const RunParams& params, u64 max_instr = 400'000'000,
               machine::CpuConfig cpu_cfg = {}) {
  mem::Memory mem;
  img.load_into(mem);
  machine::Cpu cpu(mem, cpu_cfg);
  cpu.set_pc(img.entry);
  write_input(mem, params);
  const machine::RunResult r = cpu.run(max_instr);
  EXPECT_TRUE(r.halted) << "mcf-sim did not finish in " << max_instr << " instructions";
  const auto& t = cpu.trace();
  EXPECT_EQ(t.size(), 4u);
  SimRun out;
  if (t.size() == 4) {
    out.objective = t[0];
    out.violations = t[1];
    out.art_flow = t[2];
    out.iterations = t[3];
  }
  out.instructions = r.instructions;
  out.cycles = r.cycles;
  out.output = cpu.output();
  return out;
}

RunParams small_params(u64 seed = 11) {
  RunParams p;
  p.instance.seed = seed;
  p.instance.nodes = 120;
  p.instance.arcs = 700;
  p.instance.sources = 4;
  p.instance.units = 3;
  p.instance.window = 24;
  return p;
}

TEST(McfSim, ImageBuildsWithSaneSymbols) {
  const sym::Image img = build_mcf_image();
  EXPECT_GT(img.text_words.size(), 500u);
  const char* expected[] = {"main", "refresh_potential", "primal_bea_mpp", "sort_basket",
                            "price_out_impl", "update_tree", "primal_iminus",
                            "primal_net_simplex", "flow_cost", "dual_feasible",
                            "write_circulations", "read_min", "malloc"};
  for (const char* name : expected) {
    bool found = false;
    for (const auto& f : img.symtab.functions()) found |= f.name == name;
    EXPECT_TRUE(found) << name;
  }
  // Layout assertions (paper Figure 7) are enforced at build time; check the
  // emitted symbol table agrees.
  const sym::TypeId node = img.symtab.types().find_struct("node");
  ASSERT_NE(node, sym::kInvalidType);
  const sym::Type& t = img.symtab.types().get(node);
  EXPECT_EQ(t.size, 120u);
  bool orientation56 = false;
  for (const auto& mem : t.members) {
    if (mem.name == "orientation") orientation56 = mem.offset == 56;
  }
  EXPECT_TRUE(orientation56);
}

class SimVsOracle : public ::testing::TestWithParam<u64> {};

TEST_P(SimVsOracle, ObjectiveMatchesSspAndNative) {
  const sym::Image img = build_mcf_image();
  RunParams params = small_params(GetParam());
  const SimRun sim = run_sim(img, params);
  EXPECT_EQ(sim.violations, 0) << "dual feasibility violated";
  EXPECT_EQ(sim.art_flow, 0) << "artificial arcs still carry flow";

  mcf::Network ref = mcf::generate_instance(params.instance);
  const mcf::SspResult oracle = mcf::ssp_solve(ref.n, ref.supply, ref.cands);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_EQ(sim.objective, oracle.cost) << "seed " << GetParam();

  mcf::Network native = mcf::generate_instance(params.instance);
  mcf::SimplexParams sp;
  EXPECT_EQ(mcf::solve(native, sp, params.instance.initial_active), oracle.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsOracle, ::testing::Values(1, 2, 3, 17, 42));

TEST(McfSim, OptimizedLayoutPreservesSemantics) {
  BuildOptions plain;
  BuildOptions optimized;
  optimized.optimized_node_layout = true;
  optimized.align_heap_arrays = true;
  const sym::Image img1 = build_mcf_image(plain);
  const sym::Image img2 = build_mcf_image(optimized);
  RunParams params = small_params(5);
  const SimRun a = run_sim(img1, params);
  const SimRun b = run_sim(img2, params);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(b.violations, 0);
  // The optimized node struct is 128 bytes.
  const sym::TypeId node = img2.symtab.types().find_struct("node");
  EXPECT_EQ(img2.symtab.types().get(node).size, 128u);
}

TEST(McfSim, PrefetchVariantPreservesSemantics) {
  BuildOptions pf;
  pf.prefetch_arc_scan = true;
  RunParams params = small_params(5);
  const SimRun a = run_sim(build_mcf_image(), params);
  const SimRun b = run_sim(build_mcf_image(pf), params);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(McfSim, NonHwcprofPreservesSemantics) {
  BuildOptions plain;
  BuildOptions raw;
  raw.compile.hwcprof = false;
  RunParams params = small_params(5);
  const SimRun a = run_sim(build_mcf_image(plain), params);
  const SimRun b = run_sim(build_mcf_image(raw), params);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
  // hwcprof padding costs a little (paper §2.1 measured +1.3% runtime).
  EXPECT_GT(a.instructions, b.instructions);
  EXPECT_LT(static_cast<double>(a.instructions), static_cast<double>(b.instructions) * 1.3);
}

TEST(McfSim, SuspendImplPreservesObjectiveAndAddsPricingWork) {
  const sym::Image img = build_mcf_image();
  RunParams off = small_params(21);
  RunParams on = small_params(21);
  on.suspend_threshold = on.instance.max_cost;
  const SimRun a = run_sim(img, off);
  const SimRun b = run_sim(img, on);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(b.violations, 0);
  EXPECT_EQ(b.art_flow, 0);
}

TEST(McfSim, EmitOutputWritesCirculations) {
  RunParams params = small_params(3);
  params.emit_output = true;
  const SimRun r = run_sim(build_mcf_image(), params);
  EXPECT_FALSE(r.output.empty());
  // Rows are "tail head flow\n".
  EXPECT_NE(r.output.find('\n'), std::string::npos);
}

TEST(McfSim, DeterministicCycleCount) {
  const sym::Image img = build_mcf_image();
  RunParams params = small_params(9);
  const SimRun a = run_sim(img, params);
  const SimRun b = run_sim(img, params);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(McfSim, RefreshGapControlsRefreshWork) {
  // A smaller refresh gap means more refresh_potential calls: more work,
  // same answer.
  const sym::Image img = build_mcf_image();
  RunParams often = small_params(13);
  often.refresh_gap = 1;
  RunParams rare = small_params(13);
  rare.refresh_gap = 1000000;
  const SimRun a = run_sim(img, often);
  const SimRun b = run_sim(img, rare);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_GT(a.instructions, b.instructions);
}

}  // namespace
}  // namespace dsprof::mcfsim
