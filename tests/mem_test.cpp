#include <gtest/gtest.h>

#include "mem/memory.hpp"

namespace dsprof::mem {
namespace {

void setup_mem(Memory& m) {

  m.add_segment({"text", SegKind::Text, kTextBase, 0x1000, false, true});
  m.add_segment({"data", SegKind::Data, kDataBase, 0x1000, true, false});
  m.add_segment({"heap", SegKind::Heap, kHeapBase, 0x100000, true, false});
  m.add_segment({"stack", SegKind::Stack, kStackTop - kStackSize, kStackSize + 0x4000, true,
                 false});

}

TEST(Memory, LoadStoreRoundTrip) {
  Memory m;
  setup_mem(m);
  m.store(kHeapBase + 64, 8, 0x1122334455667788ull);
  EXPECT_EQ(m.load(kHeapBase + 64, 8), 0x1122334455667788ull);
  m.store(kHeapBase + 128, 4, 0xCAFEBABEull);
  EXPECT_EQ(m.load(kHeapBase + 128, 4), 0xCAFEBABEull);
  m.store(kHeapBase + 200, 1, 0xAB);
  EXPECT_EQ(m.load(kHeapBase + 200, 1), 0xABull);
}

TEST(Memory, ZeroInitialized) {
  Memory m;
  setup_mem(m);
  EXPECT_EQ(m.load(kHeapBase + 0x8000, 8), 0u);
}

TEST(Memory, LittleEndianBytes) {
  Memory m;
  setup_mem(m);
  m.store(kDataBase, 8, 0x0102030405060708ull);
  EXPECT_EQ(m.load(kDataBase, 1), 0x08u);
  EXPECT_EQ(m.load(kDataBase + 7, 1), 0x01u);
}

TEST(Memory, UnmappedFaults) {
  Memory m;
  setup_mem(m);
  EXPECT_THROW(m.load(0x999, 8), Error);
  EXPECT_THROW(m.store(kTextBase + 0x2000, 8, 1), Error);
}

TEST(Memory, WriteToReadOnlyFaults) {
  Memory m;
  setup_mem(m);
  EXPECT_THROW(m.store(kTextBase, 4, 1), Error);
}

TEST(Memory, FetchRequiresExecutable) {
  Memory m;
  setup_mem(m);
  const u32 word = 0x12345678;
  m.write_bytes(kTextBase, &word, 4);
  EXPECT_EQ(m.fetch_word(kTextBase), word);
  EXPECT_THROW(m.fetch_word(kHeapBase), Error);
}

TEST(Memory, MisalignedAccessFaults) {
  Memory m;
  setup_mem(m);
  EXPECT_THROW(m.load(kHeapBase + 3, 8), Error);
  EXPECT_THROW(m.store(kHeapBase + 2, 4, 1), Error);
}

TEST(Memory, AccessStraddlingSegmentEndFaults) {
  Memory m;
  setup_mem(m);
  EXPECT_THROW(m.load(kDataBase + 0x1000 - 4, 8), Error);
}

TEST(Memory, OverlappingSegmentsRejected) {
  Memory m;
  setup_mem(m);
  EXPECT_THROW(m.add_segment({"dup", SegKind::Data, kDataBase + 8, 16, true, false}), Error);
}

TEST(Memory, Classify) {
  Memory m;
  setup_mem(m);
  EXPECT_EQ(m.classify(kTextBase), SegKind::Text);
  EXPECT_EQ(m.classify(kHeapBase + 5), SegKind::Heap);
  EXPECT_EQ(m.classify(kStackTop - 8), SegKind::Stack);
  EXPECT_EQ(m.classify(0x1234), SegKind::Unmapped);
}

TEST(Memory, BulkReadWriteAcrossChunks) {
  Memory m;
  setup_mem(m);
  std::vector<u8> data(100000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  m.write_bytes(kHeapBase, data.data(), data.size());
  std::vector<u8> back(data.size());
  m.read_bytes(kHeapBase, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(Memory, ReadBytesOfUntouchedMemoryIsZero) {
  Memory m;
  setup_mem(m);
  u8 buf[16] = {0xFF};
  m.read_bytes(kHeapBase + 0x9000, buf, sizeof buf);
  for (u8 b : buf) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace dsprof::mem
