// Counter-set multiplexing, end to end: spec partitioning (and its negative
// paths), the collector's slice rotation and live-cycle accounting, the
// slice-aware file formats (plus corruption handling and non-multiplexed
// byte-compat), the renormalizing reduction, and the wire codecs.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <map>

#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace dsprof {
namespace {

using machine::HwEvent;

// --- spec partitioning ------------------------------------------------------

std::string spec_error(const std::string& spec, bool multiplex) {
  try {
    collect::parse_counter_spec(spec, multiplex);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

/// Every set must be schedulable as-is: set ids contiguous from 0, at most
/// kNumPics counters per set, each on a distinct PIC its mask allows.
void expect_feasible_partition(const std::vector<experiment::CounterSpec>& specs) {
  std::map<unsigned, std::vector<const experiment::CounterSpec*>> sets;
  unsigned max_set = 0;
  for (const auto& c : specs) {
    sets[c.set].push_back(&c);
    max_set = std::max(max_set, c.set);
  }
  EXPECT_EQ(sets.size(), static_cast<size_t>(max_set) + 1) << "set ids must be contiguous";
  for (const auto& [set, members] : sets) {
    ASSERT_LE(members.size(), static_cast<size_t>(machine::kNumPics));
    bool pic_used[machine::kNumPics] = {};
    for (const auto* c : members) {
      ASSERT_LT(c->pic, machine::kNumPics);
      EXPECT_TRUE((machine::hw_event_info(c->event).pic_mask >> c->pic) & 1u)
          << machine::hw_event_info(c->event).name << " scheduled on infeasible PIC"
          << c->pic << " in set " << set;
      EXPECT_FALSE(pic_used[c->pic]) << "two counters share PIC" << c->pic
                                     << " in set " << set;
      pic_used[c->pic] = true;
    }
  }
}

TEST(MultiplexSpec, DuplicateCounterRejected) {
  const std::string msg = spec_error("ecstall,on,ecstall,hi", true);
  EXPECT_NE(msg.find("duplicate counter 'ecstall'"), std::string::npos) << msg;
  // The same check guards the non-multiplexed path.
  EXPECT_NE(spec_error("+dtlbm,on,dtlbm,101", false).find("duplicate counter"),
            std::string::npos);
}

TEST(MultiplexSpec, MoreThanTwoRejectedWhenMultiplexingDisabled) {
  const std::string msg = spec_error("cycles,on,insts,on,icm,on", false);
  EXPECT_NE(msg.find("at most 2 hardware counters"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 3"), std::string::npos) << msg;
  // The collector surfaces the same error when its slice budget is 0.
  auto mod = testfix::make_chase_module(100, 1, 256);
  const sym::Image img = scc::compile(*mod);
  collect::CollectOptions opt;
  opt.hw = "cycles,on,insts,on,icm,on";
  opt.mpx_slice_cycles = 0;
  EXPECT_THROW(collect::Collector(img, opt), Error);
}

TEST(MultiplexSpec, RegisterConflictStillRejectedWhenMultiplexingDisabled) {
  const std::string msg = spec_error("+ecrm,on,+dtlbm,on", false);
  EXPECT_NE(msg.find("cannot be scheduled"), std::string::npos) << msg;
  EXPECT_NE(msg.find("PIC1"), std::string::npos) << msg;
}

TEST(MultiplexSpec, FourCountersPartitionIntoFeasibleSets) {
  // cycles can run on either PIC, so it yields PIC0 to ecstall (one-level
  // swap); ecrm and dtlbm both fit only PIC1 and land in sets of their own.
  const auto specs =
      collect::parse_counter_spec("cycles,100003,+ecstall,on,+ecrm,on,+dtlbm,on", true);
  ASSERT_EQ(specs.size(), 4u);
  expect_feasible_partition(specs);
  EXPECT_EQ(specs[0].set, 0u);  // cycles
  EXPECT_EQ(specs[0].pic, 1u);
  EXPECT_EQ(specs[1].set, 0u);  // ecstall
  EXPECT_EQ(specs[1].pic, 0u);
  EXPECT_EQ(specs[2].set, 1u);  // ecrm
  EXPECT_EQ(specs[3].set, 2u);  // dtlbm
}

TEST(MultiplexSpec, TwoCountersStayDedicatedUnderMultiplexing) {
  // A spec that fits the registers must get the identical single-set
  // assignment whether or not multiplexing is available (the byte-identity
  // precondition: nothing changes for existing command lines).
  const auto mpx = collect::parse_counter_spec("+ecstall,on,+ecrm,on", true);
  const auto ded = collect::parse_counter_spec("+ecstall,on,+ecrm,on");
  ASSERT_EQ(mpx.size(), ded.size());
  for (size_t i = 0; i < mpx.size(); ++i) {
    EXPECT_EQ(mpx[i].set, 0u);
    EXPECT_EQ(mpx[i].pic, ded[i].pic);
    EXPECT_EQ(mpx[i].event, ded[i].event);
  }
}

TEST(MultiplexSpec, AllNineCountersPartition) {
  std::string spec;
  for (size_t i = 0; i < machine::kNumHwEvents; ++i) {
    if (!spec.empty()) spec += ",";
    spec += machine::hw_event_info(static_cast<HwEvent>(i)).name;
    spec += ",on";
  }
  const auto specs = collect::parse_counter_spec(spec, true);
  ASSERT_EQ(specs.size(), machine::kNumHwEvents);
  expect_feasible_partition(specs);
}

// --- collection: slice rotation + accounting --------------------------------

class MultiplexCollect : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mod = testfix::make_chase_module(3000, 8, 8192);
    image_ = new sym::Image(scc::compile(*mod));
  }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }

  struct MpxRun {
    std::unique_ptr<collect::Collector> c;  // kept alive for cpu() oracles
    experiment::Experiment ex;
  };

  /// A 4-counter spec that partitions into two sets on this machine:
  /// {ecstall PIC0, ecrm PIC1} / {dcrm PIC0, dtlbm PIC1}. The small DTLB
  /// makes the chase thrash it so every counter has events.
  static MpxRun collect_mpx() {
    collect::CollectOptions opt;
    opt.hw = "+ecstall,199,+ecrm,61,+dcrm,31,+dtlbm,13";
    opt.clock = "on";
    opt.mpx_slice_cycles = 10007;  // short slices: many rotations in a short run
    // A hostile hierarchy so every counter in the spec has plenty of events:
    // the 3000-node chase overflows the tiny D$ and E$ and thrashes the DTLB.
    opt.cpu.hierarchy.dcache = {4 * 1024, 2, 32, /*write_allocate=*/false};
    opt.cpu.hierarchy.ecache = {16 * 1024, 2, 512, /*write_allocate=*/true};
    opt.cpu.hierarchy.dtlb = {8, 2, 8 * 1024};
    MpxRun r;
    r.c = std::make_unique<collect::Collector>(*image_, opt);
    r.ex = r.c->run();
    return r;
  }

  static sym::Image* image_;
};

sym::Image* MultiplexCollect::image_ = nullptr;

TEST_F(MultiplexCollect, RotatesSetsAndAccountsLiveCycles) {
  const auto ex = collect_mpx().ex;
  ASSERT_TRUE(ex.multiplexed());
  ASSERT_EQ(ex.slices.size(), 2u);
  u64 live = 0;
  for (const auto& s : ex.slices) {
    EXPECT_GT(s.live_cycles, 0u);
    EXPECT_GT(s.switches, 2u) << "the run must rotate through each set repeatedly";
    live += s.live_cycles;
  }
  EXPECT_EQ(live, ex.total_cycles) << "live cycles must partition the run exactly";
  EXPECT_NE(ex.log.find("multiplex: 2 counter sets"), std::string::npos) << ex.log;

  // Every hardware overflow is stamped with the set its counter belongs to;
  // clock samples carry whichever set was live at delivery.
  std::array<u8, machine::kNumHwEvents> set_of{};
  for (const auto& c : ex.counters) set_of[static_cast<size_t>(c.event)] = static_cast<u8>(c.set);
  size_t hw_events = 0;
  for (size_t i = 0; i < ex.events.size(); ++i) {
    const auto e = ex.events[i];
    if (e.pic == machine::kClockPic) {
      EXPECT_LT(e.set, ex.slices.size());
      continue;
    }
    ++hw_events;
    EXPECT_EQ(e.set, set_of[static_cast<size_t>(e.event)]) << "event " << i;
  }
  EXPECT_GT(hw_events, 100u);
}

TEST_F(MultiplexCollect, RenormalizedTotalsMatchTheUnsampledOracle) {
  const auto run = collect_mpx();
  const auto& ex = run.ex;
  const analyze::Analysis a(ex);
  ASSERT_TRUE(a.multiplexed());

  // Per-event sample counts (to skip metrics too sparse to estimate).
  std::array<u64, machine::kNumHwEvents> samples{};
  for (size_t i = 0; i < ex.events.size(); ++i) {
    const auto e = ex.events[i];
    if (e.pic != machine::kClockPic) ++samples[static_cast<size_t>(e.event)];
  }

  size_t compared = 0;
  for (const auto& spec : ex.counters) {
    const size_t m = static_cast<size_t>(spec.event);
    const double truth = static_cast<double>(run.c->cpu().event_total(spec.event));
    EXPECT_GT(a.metric_scale(m), 1.5) << "each set is live for about half the run";
    EXPECT_LT(a.metric_scale(m), 2.7);
    if (samples[m] > 0) EXPECT_GT(a.metric_stderr(m), 0.0);
    if (samples[m] < 50 || truth < 1000) continue;  // too sparse to estimate
    ++compared;
    EXPECT_NEAR(a.total()[m] / truth, 1.0, 0.30)
        << machine::hw_event_info(spec.event).name << ": renormalized "
        << a.total()[m] << " vs true " << truth;
  }
  EXPECT_GE(compared, 2u) << "the workload must exercise enough counters to check";
  // The clock metric is live for the whole run: scaled by exactly 1.0.
  EXPECT_EQ(a.metric_scale(analyze::kUserCpuMetric), 1.0);
}

TEST_F(MultiplexCollect, ReportsAnnotateScalesOnlyWhenMultiplexed) {
  const auto ex = collect_mpx().ex;
  const analyze::Analysis a(ex);
  EXPECT_NE(analyze::render_overview(a).find("Scaled x"), std::string::npos);
  EXPECT_NE(analyze::render_function_list(a).find("renormalized"), std::string::npos);
  EXPECT_NE(analyze::render_json_report(a).find("\"mpx\":{"), std::string::npos);

  const auto ded = testfix::quick_collect(*image_, "+ecrm,61", "on");
  const analyze::Analysis b(ded);
  EXPECT_FALSE(b.multiplexed());
  for (size_t m = 0; m < analyze::kNumMetrics; ++m) EXPECT_EQ(b.metric_scale(m), 1.0);
  EXPECT_EQ(analyze::render_overview(b).find("Scaled x"), std::string::npos);
  EXPECT_EQ(analyze::render_json_report(b).find("\"mpx\""), std::string::npos);
}

TEST_F(MultiplexCollect, ReductionEnginesAgreeOnMultiplexedProfiles) {
  const auto ex = collect_mpx().ex;
  analyze::AnalysisOptions radix, sharded, baseline;
  radix.engine = analyze::Reduction::Engine::Radix;
  sharded.engine = analyze::Reduction::Engine::Sharded;
  baseline.engine = analyze::Reduction::Engine::Baseline;
  const std::string r = analyze::render_json_report(analyze::Analysis(ex, radix));
  const std::string s = analyze::render_json_report(analyze::Analysis(ex, sharded));
  const std::string b = analyze::render_json_report(analyze::Analysis(ex, baseline));
  EXPECT_EQ(r, s);
  EXPECT_EQ(r, b);
}

// --- slice-aware file formats -----------------------------------------------

u32 events_magic(const std::string& dir) {
  std::ifstream in(dir + "/events.bin", std::ios::binary);
  char b[4] = {};
  in.read(b, 4);
  u32 m = 0;
  std::memcpy(&m, b, 4);
  return m;
}

TEST_F(MultiplexCollect, SaveLoadRoundTripsSlicesInEveryFormat) {
  const auto ex = collect_mpx().ex;
  const struct {
    experiment::FileFormat format;
    u32 magic;
  } cases[] = {
      {experiment::FileFormat::ColumnarAligned, 0x4453504A},  // "DSPJ"
      {experiment::FileFormat::Columnar, 0x44535049},         // "DSPI"
      {experiment::FileFormat::Legacy, 0x44535048},           // "DSPH"
  };
  for (const auto& c : cases) {
    const std::string dir = ::testing::TempDir() + "/dsp_mpx_fmt_" +
                            std::to_string(static_cast<int>(c.format));
    ex.save(dir, c.format);
    EXPECT_EQ(events_magic(dir), c.magic);
    const auto back = experiment::Experiment::load(dir);
    ASSERT_EQ(back.slices.size(), ex.slices.size());
    for (size_t i = 0; i < ex.slices.size(); ++i) {
      EXPECT_EQ(back.slices[i].live_cycles, ex.slices[i].live_cycles);
      EXPECT_EQ(back.slices[i].switches, ex.slices[i].switches);
    }
    ASSERT_EQ(back.counters.size(), ex.counters.size());
    for (size_t i = 0; i < ex.counters.size(); ++i) {
      EXPECT_EQ(back.counters[i].set, ex.counters[i].set);
    }
    ASSERT_EQ(back.events.size(), ex.events.size());
    for (size_t i = 0; i < ex.events.size(); ++i) {
      ASSERT_EQ(back.events[i].set, ex.events[i].set) << "event " << i;
    }
    // The round-tripped profile renders identically to the in-memory one.
    EXPECT_EQ(analyze::render_json_report(analyze::Analysis(back)),
              analyze::render_json_report(analyze::Analysis(ex)));
  }
}

TEST_F(MultiplexCollect, NonMultiplexedSavesKeepTheOriginalFormats) {
  // A run that fits the registers writes the exact pre-multiplexing file
  // bytes (original magics, no set column, no slice table) and loads with an
  // empty slice table — scale 1.0 everywhere.
  const auto ex = testfix::quick_collect(*image_, "+ecrm,61", "on");
  ASSERT_TRUE(ex.slices.empty());
  const struct {
    experiment::FileFormat format;
    u32 magic;
  } cases[] = {
      {experiment::FileFormat::ColumnarAligned, 0x44535047},  // "DSPG"
      {experiment::FileFormat::Columnar, 0x44535046},         // "DSPF"
      {experiment::FileFormat::Legacy, 0x44535045},           // "DSPE"
  };
  const std::string ref = analyze::render_json_report(analyze::Analysis(ex));
  for (const auto& c : cases) {
    const std::string dir = ::testing::TempDir() + "/dsp_nonmpx_fmt_" +
                            std::to_string(static_cast<int>(c.format));
    ex.save(dir, c.format);
    EXPECT_EQ(events_magic(dir), c.magic);
    const auto back = experiment::Experiment::load(dir);
    EXPECT_TRUE(back.slices.empty());
    EXPECT_FALSE(back.multiplexed());
    EXPECT_EQ(analyze::render_json_report(analyze::Analysis(back)), ref);
  }
}

TEST_F(MultiplexCollect, CorruptSliceTablesFailWithStructuredErrors) {
  auto ex = collect_mpx().ex;
  const std::string base = ::testing::TempDir() + "/dsp_mpx_corrupt";

  // A counter pointing past the slice table.
  {
    auto bad = ex;
    bad.counters[1].set = 7;
    bad.save(base + "_setid");
    try {
      (void)experiment::Experiment::load(base + "_setid");
      FAIL() << "out-of-range set id must not load";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("outside the"), std::string::npos) << e.what();
    }
  }

  // More slice-table entries than counters is implausible on its face.
  {
    auto bad = ex;
    bad.slices.resize(7);
    bad.save(base + "_count");
    try {
      (void)experiment::Experiment::load(base + "_count");
      FAIL() << "implausible slice-table size must not load";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("implausible slice-table set count"),
                std::string::npos)
          << e.what();
    }
  }

  // A truncated file dies on a bytestream invariant, not a crash.
  {
    ex.save(base + "_trunc");
    std::ifstream in(base + "_trunc/events.bin", std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    ASSERT_GT(bytes.size(), 120u);
    std::ofstream out(base + "_trunc/events.bin", std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 120);  // mid-header: inside counters/slice table
    out.close();
    EXPECT_THROW((void)experiment::Experiment::load(base + "_trunc"), Error);
  }
}

// --- wire codecs -------------------------------------------------------------

TEST_F(MultiplexCollect, WireHelloCarriesSetsAndSlices) {
  const auto ex = collect_mpx().ex;
  serve::HelloPayload h;
  h.client_name = "mpx-test";
  h.image = ex.image;
  h.counters = ex.counters;
  h.total_cycles = ex.total_cycles;
  h.slices = ex.slices;
  serve::HelloPayload back;
  ASSERT_TRUE(serve::decode_hello(serve::encode_hello(h), back).ok());
  ASSERT_EQ(back.counters.size(), h.counters.size());
  for (size_t i = 0; i < h.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].set, h.counters[i].set);
  }
  ASSERT_EQ(back.slices.size(), h.slices.size());
  for (size_t i = 0; i < h.slices.size(); ++i) {
    EXPECT_EQ(back.slices[i].live_cycles, h.slices[i].live_cycles);
    EXPECT_EQ(back.slices[i].switches, h.slices[i].switches);
  }

  // An implausible slice table is rejected as Malformed, not adopted.
  h.slices.resize(machine::kNumHwEvents + 1);
  const serve::Status st = serve::decode_hello(serve::encode_hello(h), back);
  EXPECT_EQ(st.code, serve::StatusCode::Malformed);
  EXPECT_NE(st.message.find("implausible slice-table set count"), std::string::npos)
      << st.message;
}

TEST_F(MultiplexCollect, WireEventBatchCarriesTheSetColumn) {
  const auto ex = collect_mpx().ex;
  std::vector<u8> payload = serve::encode_event_batch(ex.events);
  experiment::EventStore back;
  ASSERT_TRUE(serve::decode_event_batch(std::move(payload), back).ok());
  ASSERT_EQ(back.size(), ex.events.size());
  bool any_nonzero = false;
  for (size_t i = 0; i < back.size(); ++i) {
    ASSERT_EQ(back[i].set, ex.events[i].set) << "event " << i;
    any_nonzero |= back[i].set != 0;
  }
  EXPECT_TRUE(any_nonzero) << "a multiplexed run must have events beyond set 0";
}

// --- multiplexing through the daemon and the fleet merge --------------------

TEST_F(MultiplexCollect, StreamedSnapshotsRenormalizeLikeOffline) {
  // The daemon path: stream a multiplexed run into a server session and
  // snapshot — must render byte-for-byte the offline analysis, standard
  // errors included. The snapshot path has no events.bin to recount, so
  // the per-metric sample counts must travel with the reduction itself.
  const auto run = collect_mpx();
  serve::Server server;
  auto [client_end, server_end] = serve::make_pipe_pair();
  server.add_session(std::move(server_end));
  serve::Client client(std::move(client_end));
  serve::Accounting acct;
  ASSERT_TRUE(serve::stream_experiment(client, run.ex, 777, acct).ok());
  std::string json;
  ASSERT_TRUE(client.snapshot(acct, json).ok());
  EXPECT_EQ(json, analyze::render_json_report(analyze::Analysis(run.ex)));
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

TEST_F(MultiplexCollect, MixedMultiplexedAndPlainDirsMergeExactly) {
  // merge_results over one multiplexed and one dedicated-counter dir must
  // render the bytes of the offline multi-dir reduction of the same pair:
  // each dir's own slice table drives its renormalization (the plain dir
  // scales by exactly 1.0), and merging happens on the raw integer counts
  // *before* any scaling.
  const auto run = collect_mpx();
  const auto plain = testfix::quick_collect(*image_, "+ecrm,61", "on");
  const std::vector<const experiment::Experiment*> both = {&run.ex, &plain};
  const std::string offline = analyze::render_json_report(analyze::Analysis(both));

  const analyze::ReductionResult a = analyze::Reduction::run({&run.ex}, 1);
  const analyze::ReductionResult b = analyze::Reduction::run({&plain}, 1);
  analyze::ReductionResult merged = analyze::merge_results({&a, &b});
  analyze::Analysis m(both, std::move(merged));
  EXPECT_EQ(analyze::render_json_report(m), offline);

  // Same identity through the server: two sessions (one mpx, one plain),
  // one merged fleet snapshot.
  serve::Server server;
  for (const auto* ex : both) {
    auto [client_end, server_end] = serve::make_pipe_pair();
    server.add_session(std::move(server_end));
    serve::Client client(std::move(client_end));
    serve::Accounting acct;
    ASSERT_TRUE(serve::stream_experiment(client, *ex, 1024, acct).ok());
    ASSERT_TRUE(client.close(acct).ok());
  }
  server.wait_all();
  auto [m_end, s_end] = serve::make_pipe_pair();
  server.add_session(std::move(s_end));
  serve::Client monitor(std::move(m_end));
  serve::Accounting macct;
  std::string merged_json;
  ASSERT_TRUE(monitor.merged_snapshot(macct, merged_json).ok());
  EXPECT_EQ(merged_json, offline);
  server.stop();
}

}  // namespace
}  // namespace dsprof
