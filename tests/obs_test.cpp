// Tests for the self-observability layer (src/obs/): shard-merge
// determinism, histogram bucketing, span ring wraparound, the
// disabled-is-free contract, and concurrent updates (run these under
// DSPROF_SANITIZE=thread to exercise the lock-free shard path).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

using namespace dsprof;

namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_for_test();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(true);
    obs::reset_for_test();
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  const obs::Counter c = obs::counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(obs::snapshot().counter_value("test.counter"), 42u);
}

TEST_F(ObsTest, InterningReturnsSameHandle) {
  EXPECT_EQ(obs::counter("test.intern").id, obs::counter("test.intern").id);
  EXPECT_EQ(obs::histogram("test.h").id, obs::histogram("test.h").id);
  EXPECT_NE(obs::counter("test.a").id, obs::counter("test.b").id);
}

TEST_F(ObsTest, GaugeLastWriterWins) {
  const obs::Gauge g = obs::gauge("test.gauge");
  g.set(7);
  g.set(-3);
  const obs::Snapshot s = obs::snapshot();
  for (const auto& [name, v] : s.gauges) {
    if (name == "test.gauge") {
      EXPECT_EQ(v, -3);
      return;
    }
  }
  FAIL() << "gauge missing from snapshot";
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  const obs::Histogram h = obs::histogram("test.hist");
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1: [1,2)
  h.record(2);    // bucket 2: [2,4)
  h.record(3);    // bucket 2
  h.record(100);  // bucket 7: [64,128)
  const obs::Snapshot s = obs::snapshot();
  const obs::HistogramSnapshot* hs = s.histogram_by_name("test.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 5u);
  EXPECT_EQ(hs->sum, 106u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_EQ(hs->buckets[2], 2u);
  EXPECT_EQ(hs->buckets[7], 1u);
  EXPECT_EQ(hs->mean(), 106u / 5u);
  // Quantiles resolve to the bucket's upper bound.
  EXPECT_EQ(hs->quantile(0.5), 4u);     // third value lands in [2,4)
  EXPECT_EQ(hs->quantile(1.0), 128u);   // max lands in [64,128)
  // bucket_floor is the inclusive lower bound.
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(1), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_floor(7), 64u);
}

// The central merge property: per-thread shards merge by integer addition,
// so the snapshot totals are exact and independent of the thread schedule.
TEST_F(ObsTest, ShardMergeIsDeterministicAcrossThreads) {
  const int kThreads = 8;
  const u64 kPerThread = 10000;
  for (int round = 0; round < 2; ++round) {
    obs::reset_for_test();
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([t] {
        const obs::Counter c = obs::counter("test.merge.counter");
        const obs::Histogram h = obs::histogram("test.merge.hist");
        for (u64 i = 0; i < kPerThread; ++i) {
          c.add();
          h.record(static_cast<u64>(t) * kPerThread + i);
        }
      });
    }
    for (auto& t : ts) t.join();
    const obs::Snapshot s = obs::snapshot();
    EXPECT_EQ(s.counter_value("test.merge.counter"), kThreads * kPerThread);
    const obs::HistogramSnapshot* hs = s.histogram_by_name("test.merge.hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, kThreads * kPerThread);
    // sum of 0..N-1 over all threads: exact, schedule-independent.
    const u64 n = kThreads * kPerThread;
    EXPECT_EQ(hs->sum, n * (n - 1) / 2);
  }
}

TEST_F(ObsTest, SnapshotIsStableWithoutActivity) {
  obs::counter("test.stable").add(3);
  obs::histogram("test.stable.h").record(17);
  const std::string a = obs::snapshot().to_json();
  const std::string b = obs::snapshot().to_json();
  EXPECT_EQ(a, b);
}

TEST_F(ObsTest, SpanRingRecordsAndWrapsAround) {
  const obs::SpanName name = obs::span_name("test.span");
  { obs::ScopedSpan s(name); }
  obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.spans_recorded, 1u);
  EXPECT_EQ(snap.spans_dropped, 0u);

  // Overfill the ring: capacity is kSpanRingCapacity, so recording 3x the
  // capacity keeps the newest kSpanRingCapacity records and counts the rest
  // as dropped (never blocks, never allocates).
  const u64 total = 3 * obs::kSpanRingCapacity;
  for (u64 i = 1; i < total; ++i) {
    obs::ScopedSpan s(name);
  }
  snap = obs::snapshot();
  EXPECT_EQ(snap.spans_recorded, total);
  EXPECT_EQ(snap.spans_dropped, total - obs::kSpanRingCapacity);

  std::vector<std::string> names;
  const std::vector<obs::SpanRecord> records = obs::span_records(&names);
  EXPECT_EQ(records.size(), obs::kSpanRingCapacity);
  // Sorted by start time, and every record well-formed.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_LT(records[i].name, names.size());
    EXPECT_EQ(names[records[i].name], "test.span");
    EXPECT_LE(records[i].t0_ns, records[i].t1_ns);
    if (i > 0) {
      EXPECT_GE(records[i].t0_ns, records[i - 1].t0_ns);
    }
  }
}

TEST_F(ObsTest, DisabledInstrumentationRecordsNothing) {
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::counter("test.off.counter").add(5);
  obs::gauge("test.off.gauge").set(9);
  obs::histogram("test.off.hist").record(123);
  {
    obs::ScopedSpan s(obs::span_name("test.off.span"));
    obs::ScopedTimer t(obs::histogram("test.off.timer"));
  }
  obs::set_enabled(true);
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter_value("test.off.counter"), 0u);
  EXPECT_EQ(s.spans_recorded, 0u);
  const obs::HistogramSnapshot* hs = s.histogram_by_name("test.off.hist");
  ASSERT_NE(hs, nullptr);  // registered, just never written
  EXPECT_EQ(hs->count, 0u);
}

// A span constructed while disabled must not record on destruction even if
// obs is re-enabled mid-scope (the t0 sentinel contract).
TEST_F(ObsTest, SpanNeverStraddlesEnableFlip) {
  obs::set_enabled(false);
  {
    obs::ScopedSpan s(obs::span_name("test.straddle"));
    obs::set_enabled(true);
  }
  EXPECT_EQ(obs::snapshot().spans_recorded, 0u);
}

TEST_F(ObsTest, ScopedTimerRecordsElapsed) {
  const obs::Histogram h = obs::histogram("test.timer");
  { obs::ScopedTimer t(h); }
  const obs::Snapshot s = obs::snapshot();
  const obs::HistogramSnapshot* hs = s.histogram_by_name("test.timer");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
}

TEST_F(ObsTest, JsonSnapshotShape) {
  obs::counter("test.json.c").add(2);
  obs::gauge("test.json.g").set(5);
  obs::histogram("test.json.h").record(8);
  { obs::ScopedSpan s(obs::span_name("test.json.s")); }
  const std::string j = obs::snapshot().to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.c\":2"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.g\":5"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.h\""), std::string::npos);
  EXPECT_NE(j.find("\"spans\""), std::string::npos);
  EXPECT_EQ(j.find('\n'), std::string::npos);  // one line, machine-diffable

  const std::string text = obs::snapshot().to_text();
  EXPECT_NE(text.find("test.json.c"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  { obs::ScopedSpan s(obs::span_name("test.trace")); }
  const std::string t = obs::chrome_trace_json();
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(t.find("test.trace"), std::string::npos);
}

// Concurrent counters, gauges, histograms and spans from many threads; the
// interesting assertions are the exact totals, plus data-race freedom under
// DSPROF_SANITIZE=thread. snapshot() runs concurrently with the writers to
// exercise the reader side of the lock-free shards.
TEST_F(ObsTest, ConcurrentUpdatesWithConcurrentSnapshots) {
  const int kThreads = 8;
  const u64 kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)obs::snapshot();
      (void)obs::chrome_trace_json();
    }
  });
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      const obs::Counter c = obs::counter("test.conc.counter");
      const obs::Histogram h = obs::histogram("test.conc.hist");
      const obs::SpanName sp = obs::span_name("test.conc.span");
      const obs::Gauge g = obs::gauge("test.conc.gauge");
      for (u64 i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(i);
        g.set(static_cast<i64>(i));
        if (i % 64 == 0) obs::ScopedSpan s(sp);
      }
    });
  }
  for (auto& t : ts) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter_value("test.conc.counter"), kThreads * kPerThread);
  const obs::HistogramSnapshot* hs = s.histogram_by_name("test.conc.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kThreads * kPerThread);
}

}  // namespace
