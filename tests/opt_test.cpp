// src/opt/ — LayoutPlan round-trips (text + JSON, fixed and fuzzed), applier
// idempotence (byte-identical images), planner determinism across reduction
// thread counts, the affinity analyzer's member/window evidence, and the
// closed loop reproducing (or beating) the hand-tuned churn fix.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "analyze/metrics.hpp"
#include "collect/collector.hpp"
#include "experiment/experiment.hpp"
#include "opt/apply.hpp"
#include "opt/driver.hpp"
#include "sa/cfg.hpp"
#include "sa/dataflow.hpp"
#include "sa/loops.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"
#include "support/rng.hpp"
#include "sym/image.hpp"

namespace dsprof::opt {
namespace {

using machine::HwEvent;

LayoutPlan sample_plan() {
  LayoutPlan p;
  p.metric = "ecstall";
  p.page_size_hint = 512 * 1024;
  StructDirective node;
  node.struct_name = "node";
  node.member_order = {"orientation", "child", "potential", "pred", "basic_arc"};
  node.pad_to = 128;
  node.align_line = true;
  node.note = "hot 5/15 members; pad 120->128";
  StructDirective arc;
  arc.struct_name = "arc";
  arc.prefetch = true;
  arc.note = "streaming sweep -> prefetch";
  p.structs = {arc, node};  // sorted by name
  return p;
}

TEST(PlanRoundTrip, Text) {
  const LayoutPlan p = sample_plan();
  const std::string text = plan_to_text(p);
  EXPECT_EQ(plan_from_text(text), p);
  // Serialization is itself stable.
  EXPECT_EQ(plan_to_text(plan_from_text(text)), text);
}

TEST(PlanRoundTrip, Json) {
  const LayoutPlan p = sample_plan();
  const std::string json = plan_to_json(p);
  EXPECT_EQ(plan_from_json(json), p);
  EXPECT_EQ(plan_to_json(plan_from_json(json)), json);
}

TEST(PlanRoundTrip, EmptyPlan) {
  LayoutPlan p;
  p.metric = "ecstall";
  EXPECT_EQ(plan_from_text(plan_to_text(p)), p);
  EXPECT_EQ(plan_from_json(plan_to_json(p)), p);
}

TEST(PlanRoundTrip, Fuzzed) {
  Xoshiro256 rng(20260809);
  const std::vector<std::string> names = {"a", "bb", "ccc", "hot_a", "x9", "m_",
                                          "pad1", "zz", "q", "r2d2"};
  for (int iter = 0; iter < 200; ++iter) {
    LayoutPlan p;
    p.metric = names[rng.below(names.size())];
    if (rng.below(2) != 0) p.page_size_hint = (u64{1} << (12 + rng.below(10)));
    const size_t nstructs = rng.below(4);
    for (size_t s = 0; s < nstructs; ++s) {
      StructDirective d;
      d.struct_name = names[rng.below(names.size())] + std::to_string(s);
      const size_t nmem = rng.below(names.size());
      std::vector<std::string> pool = names;
      for (size_t m = 0; m < nmem; ++m) {
        const size_t pick = static_cast<size_t>(rng.below(pool.size()));
        d.member_order.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<long>(pick));
      }
      if (rng.below(2) != 0) d.pad_to = 8 * (1 + rng.below(64));
      d.align_line = rng.below(2) != 0;
      d.prefetch = rng.below(2) != 0;
      if (rng.below(2) != 0) d.note = "note with spaces & \"quotes\" \\ and tabs\t!";
      p.structs.push_back(std::move(d));
    }
    EXPECT_EQ(plan_from_text(plan_to_text(p)), p) << plan_to_text(p);
    EXPECT_EQ(plan_from_json(plan_to_json(p)), p) << plan_to_json(p);
  }
}

TEST(PlanRoundTrip, MalformedInputsThrow) {
  EXPECT_THROW(plan_from_text(""), Error);                    // no header
  EXPECT_THROW(plan_from_text("metric x\n"), Error);          // no header
  const std::string h = "# dsprof layout plan v1\n";
  EXPECT_THROW(plan_from_text(h + "bogus keyword\n"), Error);
  EXPECT_THROW(plan_from_text(h + "order a b\n"), Error);     // outside struct
  EXPECT_THROW(plan_from_text(h + "struct s\n"), Error);      // unterminated
  EXPECT_THROW(plan_from_text(h + "struct s\npad x\nend\n"), Error);
  EXPECT_THROW(plan_from_text(h + "struct s\nalign word\nend\n"), Error);
  EXPECT_THROW(plan_from_text(h + "struct s\nstruct t\n"), Error);  // nested
  EXPECT_THROW(plan_from_json(""), Error);
  EXPECT_THROW(plan_from_json("{\"version\":2}"), Error);
  EXPECT_THROW(plan_from_json("{\"metric\":\"x\"} junk"), Error);
  EXPECT_THROW(plan_from_json("{\"wat\":1}"), Error);
  EXPECT_THROW(plan_from_json("{\"structs\":[{\"pad_to\":-1}]}"), Error);
}

// --- applier ---------------------------------------------------------------

std::unique_ptr<scc::Module> record_module() {
  auto mod = std::make_unique<scc::Module>();
  scc::StructDef* rec = mod->add_struct("record");
  rec->field("id", scc::Type::i64())
      .field("hot_a", scc::Type::i64())
      .field("hot_b", scc::Type::i64())
      .field("cold", scc::Type::i64());
  return mod;
}

TEST(Apply, ReorderAndPad) {
  auto mod = record_module();
  LayoutPlan p;
  StructDirective d;
  d.struct_name = "record";
  d.member_order = {"hot_a", "hot_b", "id", "cold"};
  d.pad_to = 64;
  p.structs.push_back(d);
  const ApplyStats st = apply_plan(*mod, p);
  EXPECT_EQ(st.reordered, 1u);
  EXPECT_EQ(st.padded, 1u);
  EXPECT_TRUE(st.clean());
  scc::StructDef* rec = mod->find_struct("record");
  EXPECT_EQ(rec->offset_of("hot_a"), 0u);
  EXPECT_EQ(rec->offset_of("hot_b"), 8u);
  EXPECT_EQ(rec->offset_of("id"), 16u);
  EXPECT_EQ(rec->size(), 64u);
}

TEST(Apply, SkipsUnknownStructAndBadOrder) {
  auto mod = record_module();
  LayoutPlan p;
  StructDirective ghost;
  ghost.struct_name = "ghost";
  ghost.pad_to = 64;
  StructDirective bad;
  bad.struct_name = "record";
  bad.member_order = {"id", "hot_a"};  // incomplete permutation
  StructDirective low;
  low.struct_name = "record";
  low.pad_to = 8;  // below natural size
  p.structs = {ghost, bad, low};
  const ApplyStats st = apply_plan(*mod, p);
  EXPECT_EQ(st.reordered, 0u);
  EXPECT_EQ(st.padded, 0u);
  EXPECT_EQ(st.skipped.size(), 3u);
  // The module is untouched.
  EXPECT_EQ(mod->find_struct("record")->offset_of("id"), 0u);
  EXPECT_EQ(mod->find_struct("record")->size(), 32u);
}

std::string image_bytes(const sym::Image& img) {
  ByteWriter w;
  img.serialize(w);
  const std::vector<u8> v = w.take();
  return std::string(v.begin(), v.end());
}

TEST(Apply, IdempotentByteIdenticalImages) {
  // Same plan applied to fresh builds -> byte-identical compiled images;
  // applying the plan twice to the same module changes nothing either.
  const Workload w = make_churn_workload();
  const LayoutPlan plan = churn_hand_plan();
  const std::string once = image_bytes(w.build(&plan));
  const std::string again = image_bytes(w.build(&plan));
  EXPECT_EQ(once, again);

  auto mod = record_module();
  LayoutPlan p;
  StructDirective d;
  d.struct_name = "record";
  d.member_order = {"hot_b", "hot_a", "cold", "id"};
  d.pad_to = 64;
  p.structs.push_back(d);
  apply_plan(*mod, p);
  const u64 off1 = mod->find_struct("record")->offset_of("hot_b");
  const u64 size1 = mod->find_struct("record")->size();
  apply_plan(*mod, p);
  EXPECT_EQ(mod->find_struct("record")->offset_of("hot_b"), off1);
  EXPECT_EQ(mod->find_struct("record")->size(), size1);
}

// --- affinity + planner over a real profile --------------------------------

class ChurnLoop : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(make_churn_workload());
    image_ = new sym::Image(workload_->build(nullptr));
    collect::CollectOptions copt;
    copt.hw = workload_->hw;
    copt.clock = workload_->clock;
    copt.cpu = workload_->cpu;
    collect::Collector c(*image_, copt);
    ex_ = new experiment::Experiment(c.run());
  }
  static void TearDownTestSuite() {
    delete ex_;
    delete image_;
    delete workload_;
  }
  static Workload* workload_;
  static sym::Image* image_;
  static experiment::Experiment* ex_;
};

Workload* ChurnLoop::workload_ = nullptr;
sym::Image* ChurnLoop::image_ = nullptr;
experiment::Experiment* ChurnLoop::ex_ = nullptr;

TEST_F(ChurnLoop, MemberAccessesCarryWindowsAndAddresses) {
  analyze::Analysis a(*ex_);
  const auto& acc = a.member_accesses();
  ASSERT_FALSE(acc.empty());
  EXPECT_GT(a.access_windows(), 0u);
  const sym::TypeId rec = a.symtab().types().find_struct("record");
  ASSERT_NE(rec, sym::kInvalidType);
  size_t with_ea = 0;
  for (const auto& s : acc) {
    EXPECT_EQ(s.sid, rec);  // the only struct in the image
    EXPECT_LT(s.window, a.access_windows());
    EXPECT_GT(s.weight, 0u);
    if (s.has_ea) ++with_ea;
  }
  EXPECT_GT(with_ea, 0u);
  // Sample counts: clock events land under User CPU.
  EXPECT_GT(a.sample_counts()[analyze::kUserCpuMetric], 0u);
  EXPECT_GT(a.sample_counts()[static_cast<size_t>(HwEvent::EC_stall_cycles)], 0u);
}

TEST_F(ChurnLoop, AffinityFindsHotPair) {
  analyze::Analysis a(*ex_);
  const AffinityReport r = analyze_affinity(a);
  ASSERT_EQ(r.structs.size(), 1u);
  const StructReport& sr = r.structs[0];
  EXPECT_EQ(sr.name, "record");
  EXPECT_TRUE(sr.heap_resident);
  // hot_a and hot_b dominate the member heat and co-occur in windows.
  size_t ia = 0, ib = 0;
  for (size_t i = 0; i < sr.members.size(); ++i) {
    if (sr.members[i].name == "hot_a") ia = i;
    if (sr.members[i].name == "hot_b") ib = i;
  }
  EXPECT_GT(sr.members[ia].weight, 0.0);
  EXPECT_GT(sr.members[ib].weight, 0.0);
  EXPECT_GT(sr.aff(ia, ib), 0.0);
  EXPECT_FALSE(r.hot_lines.empty());
  EXPECT_GT(r.pages.hot_pages, 0u);
  EXPECT_GT(r.pages.hot_heap_bytes, 0u);
}

TEST_F(ChurnLoop, PlannerReproducesHandTunedLayout) {
  analyze::Analysis a(*ex_);
  const Planned p = plan_for(a);
  const StructDirective* d = p.plan.find("record");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->member_order.size(), 8u);
  // The hand-tuned fix packs hot_a/hot_b first (either order packs them
  // into one D$ line).
  const std::set<std::string> front = {d->member_order[0], d->member_order[1]};
  EXPECT_EQ(front, (std::set<std::string>{"hot_a", "hot_b"}));
  // Prime-stride modulo walk has no affine stride: no prefetch directive.
  EXPECT_FALSE(d->prefetch);
}

TEST_F(ChurnLoop, PlanDeterministicAcrossThreadCounts) {
  analyze::AnalysisOptions one;
  one.threads = 1;
  analyze::AnalysisOptions four;
  four.threads = 4;
  analyze::Analysis a1(*ex_, one);
  analyze::Analysis a4(*ex_, four);
  const Planned p1 = plan_for(a1);
  const Planned p4 = plan_for(a4);
  EXPECT_EQ(p1.plan, p4.plan);
  EXPECT_EQ(plan_to_text(p1.plan), plan_to_text(p4.plan));
  EXPECT_EQ(plan_to_json(p1.plan), plan_to_json(p4.plan));
}

TEST(ClosedLoop, ChurnMatchesHandTunedWithinTwoPercent) {
  const Workload w = make_churn_workload();
  DriverOptions opt;
  const LoopResult r = run_loop(w, opt);
  EXPECT_GT(r.speedup_pct, 0.0);

  // Hand-tuned reference on the same workload/machine.
  const LayoutPlan hand = churn_hand_plan();
  auto measure = [&](const sym::Image& img) {
    mem::Memory mem;
    img.load_into(mem);
    machine::Cpu cpu(mem, w.cpu_for(&hand));
    cpu.set_truth_log_enabled(false);
    cpu.set_pc(img.entry);
    return cpu.run().cycles;
  };
  const u64 hand_cycles = measure(w.build(&hand));
  const double hand_pct = 100.0 * (1.0 - static_cast<double>(hand_cycles) /
                                             static_cast<double>(r.baseline_cycles));
  // Acceptance bar: the automatic plan is at least as good as the hand fix,
  // within 2% relative.
  EXPECT_GE(r.speedup_pct, hand_pct * 0.98)
      << "auto " << r.speedup_pct << "% vs hand " << hand_pct << "%";

  // The delta report covers every profiled metric with sample counts.
  const MetricDelta* ucpu = r.delta_for(analyze::kUserCpuMetric);
  ASSERT_NE(ucpu, nullptr);
  EXPECT_GT(ucpu->n_before, 0u);
  EXPECT_GT(ucpu->delta_pct, 0.0);
  EXPECT_TRUE(ucpu->significant);
}

// --- static stride export --------------------------------------------------

TEST(StructStrides, LinearSweepIsStreaming) {
  // A linear sweep over a struct array: the exported stride must equal the
  // struct size (streaming), feeding the planner's prefetch cross-check.
  scc::Module mod;
  scc::StructDef* cell = mod.add_struct("cell");
  cell->field("v", scc::Type::i64()).field("w", scc::Type::i64());
  scc::Function* mal = scc::add_runtime(mod);
  scc::Function* main_fn = mod.add_function("main");
  {
    scc::FunctionBuilder fb(mod, *main_fn);
    auto cs = fb.local("cs", scc::Type::ptr(cell));
    auto i = fb.local("i", scc::Type::i64());
    auto sum = fb.local("sum", scc::Type::i64());
    const i64 n = 256;
    fb.set(cs, scc::cast(fb.call(mal, {scc::Val(n * static_cast<i64>(cell->size()))}),
                         scc::Type::ptr(cell)));
    auto p = fb.local("p", scc::Type::ptr(cell));
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(p, cs + i);
      fb.set(sum, sum + p["v"]);
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }
  const sym::Image img = scc::compile(mod);
  const sa::Cfg cfg = sa::Cfg::build(img);
  const sa::ProgramFacts pf = sa::ProgramFacts::build(img, cfg);
  const sa::LoopAnalysis la = sa::LoopAnalysis::build(pf, img);
  const auto strides = sa::export_struct_strides(la, img.symtab);
  bool found = false;
  for (const auto& s : strides) {
    if (img.symtab.types().get(s.sid).name != "cell") continue;
    if (s.has_stride && s.stride == static_cast<i64>(cell->size())) found = true;
  }
  EXPECT_TRUE(found) << "no streaming stride over cell exported ("
                     << strides.size() << " records)";
}

}  // namespace
}  // namespace dsprof::opt
