// Cross-module property tests: invariants that tie the substrate together.
#include <gtest/gtest.h>

#include <random>

#include "analyze/analysis.hpp"
#include "analyze/reduction.hpp"
#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"
#include "mcfsim/mcfsim.hpp"
#include "support/bytestream.hpp"

namespace dsprof {
namespace {

using machine::HwEvent;

TEST(Determinism, CompilationIsBitStable) {
  const sym::Image a = mcfsim::build_mcf_image();
  const sym::Image b = mcfsim::build_mcf_image();
  EXPECT_EQ(a.text_words, b.text_words);
  EXPECT_EQ(a.entry, b.entry);
  EXPECT_EQ(a.data_init, b.data_init);
  ByteWriter wa, wb;
  a.symtab.serialize(wa);
  b.symtab.serialize(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(Determinism, ExperimentSaveLoadSaveIsByteStable) {
  auto mod = testfix::make_chase_module(500, 3, 1024);
  const sym::Image img = scc::compile(*mod);
  auto ex = testfix::quick_collect(img, "+dcrm,97", "hi");
  const std::string d1 = ::testing::TempDir() + "/dsp_prop_exp1";
  const std::string d2 = ::testing::TempDir() + "/dsp_prop_exp2";
  ex.save(d1);
  experiment::Experiment::load(d1).save(d2);
  EXPECT_EQ(read_file(d1 + "/events.bin"), read_file(d2 + "/events.bin"));
  EXPECT_EQ(read_file(d1 + "/loadobjects.bin"), read_file(d2 + "/loadobjects.bin"));
}

TEST(ImageInvariants, FunctionsTileTextAndTargetsAreInside) {
  const sym::Image img = mcfsim::build_mcf_image();
  const sym::SymbolTable& st = img.symtab;
  // Functions are disjoint, sorted, and inside the text segment.
  u64 prev_hi = 0;
  for (const auto& f : st.functions()) {
    EXPECT_GE(f.lo, prev_hi) << f.name << " overlaps its predecessor";
    EXPECT_GE(f.lo, img.text_base);
    EXPECT_LE(f.hi, img.text_base + img.text_size());
    prev_hi = f.hi;
  }
  for (u64 t : st.branch_targets()) {
    EXPECT_GE(t, img.text_base);
    EXPECT_LE(t, img.text_base + img.text_size());
    EXPECT_EQ(t % 4, 0u);
  }
  // Every memref PC decodes to a memory-reference instruction.
  size_t memrefs = 0;
  for (size_t i = 0; i < img.text_words.size(); ++i) {
    const u64 pc = img.text_base + 4 * i;
    if (st.memref_for(pc) != nullptr) {
      ++memrefs;
      const isa::Instr ins = isa::decode(img.text_words[i]);
      EXPECT_TRUE(isa::is_mem_op(ins.op) || isa::op_info(ins.op).is_prefetch)
          << "memref on non-memory instruction at " << std::hex << pc;
    }
  }
  EXPECT_GT(memrefs, 100u);
}

class SamplingAccuracy : public ::testing::TestWithParam<u64> {};

TEST_P(SamplingAccuracy, SampledTotalsTrackTrueCounts) {
  auto mod = testfix::make_chase_module(2500, 6, 8192);
  const sym::Image img = scc::compile(*mod);
  collect::CollectOptions opt;
  opt.hw = "+dcrm," + std::to_string(GetParam());
  collect::Collector c(img, opt);
  auto ex = c.run();
  const u64 true_total = c.cpu().event_total(HwEvent::DC_rd_miss);
  double est = 0;
  for (const auto& e : ex.events) {
    if (e.pic != machine::kClockPic) est += static_cast<double>(e.weight);
  }
  ASSERT_GT(true_total, 20 * GetParam());  // enough samples for the bound
  EXPECT_NEAR(est / static_cast<double>(true_total), 1.0, 0.05)
      << "interval " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Intervals, SamplingAccuracy, ::testing::Values(31, 97, 211, 499));

TEST(AnalysisAdditivity, MergingExperimentsSumsMetrics) {
  auto mod = testfix::make_chase_module(1000, 4, 2048);
  const sym::Image img = scc::compile(*mod);
  auto ex1 = testfix::quick_collect(img, "+dcrm,97");
  auto ex2 = testfix::quick_collect(img, "+ecrm,211", "hi");
  analyze::Analysis a1(ex1);
  analyze::Analysis a2(ex2);
  analyze::Analysis merged({&ex1, &ex2});
  for (size_t m = 0; m < analyze::kNumMetrics; ++m) {
    EXPECT_DOUBLE_EQ(merged.total()[m], a1.total()[m] + a2.total()[m]);
    EXPECT_DOUBLE_EQ(merged.data_total()[m], a1.data_total()[m] + a2.data_total()[m]);
  }
}

TEST(MergeResults, MultiDirReductionEqualsMergedSingleDirsUnderRandomSplits) {
  // The fleet-merge identity: reducing each dir on its own (through the
  // daemon's incremental fold path, under a random batch split) and merging
  // the per-dir results must render byte-for-byte what one offline
  // multi-dir reduction over the same dirs renders — integer aggregates
  // make the fold associative across batches AND across dirs.
  auto mod = testfix::make_chase_module(800, 4, 2048);
  const sym::Image img = scc::compile(*mod);
  const auto ex_a = testfix::quick_collect(img, "+ecstall,1009,+ecrm,97", "hi");
  const auto ex_b = testfix::quick_collect(img, "+dcrm,101", "on");
  const auto ex_c = testfix::quick_collect(img, "+dtlbm,31", "hi");
  const std::vector<const experiment::Experiment*> dirs = {&ex_a, &ex_b, &ex_c};
  const std::string offline = analyze::render_json_report(analyze::Analysis(dirs));

  std::mt19937_64 rng(20030815);
  for (int round = 0; round < 3; ++round) {
    std::vector<analyze::ReductionResult> parts;
    for (const auto* ex : dirs) {
      analyze::IncrementalReducer red(ex->image.symtab, ex->counters);
      size_t begin = 0;
      while (begin < ex->events.size()) {
        std::uniform_int_distribution<size_t> d(1, ex->events.size() - begin);
        const size_t end = begin + d(rng);
        red.fold(ex->events, begin, end);
        begin = end;
      }
      parts.push_back(red.snapshot());
    }
    std::vector<const analyze::ReductionResult*> ptrs;
    for (const auto& p : parts) ptrs.push_back(&p);
    analyze::Analysis merged(dirs, analyze::merge_results(ptrs));
    EXPECT_EQ(analyze::render_json_report(merged), offline) << "round " << round;
  }
}

TEST(MergeResults, DifferentBinariesRefuseToMerge) {
  // Cross-binary merges would attribute one program's PCs to another's
  // symbols; the function-name tables are the same-binary witness.
  auto mod1 = testfix::make_chase_module(500, 3, 1024);
  const sym::Image img1 = scc::compile(*mod1);
  const sym::Image img2 = mcfsim::build_mcf_image();
  const auto ex1 = testfix::quick_collect(img1, "+dcrm,97");
  const auto ex2 = testfix::quick_collect(img2, "+dcrm,97");
  const analyze::ReductionResult r1 = analyze::Reduction::run({&ex1}, 1);
  const analyze::ReductionResult r2 = analyze::Reduction::run({&ex2}, 1);
  EXPECT_THROW(analyze::merge_results({&r1, &r2}), Error);
}

TEST(ClockRates, HigherRateMeansMoreSamples) {
  auto mod = testfix::make_chase_module(800, 4, 1024);
  const sym::Image img = scc::compile(*mod);
  auto count_clock = [&](const char* rate) {
    auto ex = testfix::quick_collect(img, "", rate);
    size_t n = 0;
    for (const auto& e : ex.events) n += e.pic == machine::kClockPic;
    return n;
  };
  const size_t hi = count_clock("hi");
  const size_t on = count_clock("on");
  EXPECT_GT(hi, on * 5);  // "hi" samples ~10x as often
}

TEST(CollectorWindow, WiderBacktrackWindowFindsMoreCandidates) {
  auto mod = testfix::make_chase_module(1500, 4, 4096);
  const sym::Image img = scc::compile(*mod);
  auto candidates = [&](u32 window) {
    collect::CollectOptions opt;
    opt.hw = "+ecref,211";
    opt.backtrack_window = window;
    collect::Collector c(img, opt);
    auto ex = c.run();
    size_t n = 0, total = 0;
    for (const auto& e : ex.events) {
      if (e.pic == machine::kClockPic) continue;
      ++total;
      n += e.has_candidate;
    }
    return std::make_pair(n, total);
  };
  const auto [n1, t1] = candidates(1);
  const auto [n16, t16] = candidates(16);
  ASSERT_EQ(t1, t16);  // deterministic event stream
  EXPECT_LT(n1, n16);
  EXPECT_GT(n16, t16 / 2);
}

TEST(SkidZero, PerfectAttributionEndToEnd) {
  // With a precise-trap machine (skid 0) every validated event attributes to
  // the exact triggering instruction — the whole backtracking pipeline
  // degenerates to identity, as it should.
  auto mod = testfix::make_chase_module(1200, 8, 2048);
  const sym::Image img = scc::compile(*mod);
  machine::CpuConfig cfg;
  cfg.skid_scale = 0.0;
  cfg.hierarchy.dcache = {4 * 1024, 4, 32, false};  // plenty of D$ misses
  auto ex = testfix::quick_collect(img, "+dcrm,89", "off", cfg);
  std::map<u64, machine::TruthRecord> truth;
  for (const auto& t : ex.truth) truth[t.seq] = t;
  size_t n = 0;
  for (const auto& e : ex.events) {
    if (e.pic == machine::kClockPic) continue;
    ++n;
    ASSERT_TRUE(e.has_candidate);
    EXPECT_EQ(e.candidate_pc, truth.at(e.seq).trigger_pc);
    ASSERT_TRUE(e.has_ea);
    EXPECT_EQ(e.ea, truth.at(e.seq).ea);
  }
  EXPECT_GT(n, 50u);
  analyze::Analysis a(ex);
  for (const auto& r : a.effectiveness()) {
    EXPECT_DOUBLE_EQ(r.effectiveness(), 1.0);
  }
}

TEST(McfScaling, ObjectiveIndependentOfActivationSchedule) {
  // The optimum must not depend on how many candidates start active or on
  // the pricing cadence — only on the arc universe.
  mcf::GeneratorParams gp;
  gp.seed = 31;
  gp.nodes = 150;
  gp.arcs = 900;
  mcf::SimplexParams sp;
  std::vector<mcf::cost_t> costs;
  for (double frac : {0.05, 0.3, 1.0}) {
    mcf::Network net = mcf::generate_instance(gp);
    costs.push_back(mcf::solve(net, sp, frac));
  }
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(costs[1], costs[2]);
}

TEST(McfScaling, RefreshGapDoesNotChangeObjective) {
  mcf::GeneratorParams gp;
  gp.seed = 77;
  gp.nodes = 120;
  gp.arcs = 700;
  std::vector<mcf::cost_t> costs;
  for (i64 gap : {1, 7, 1000000}) {
    mcf::Network net = mcf::generate_instance(gp);
    mcf::SimplexParams sp;
    sp.refresh_gap = gap;
    costs.push_back(mcf::solve(net, sp));
  }
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(costs[1], costs[2]);
}

}  // namespace
}  // namespace dsprof
