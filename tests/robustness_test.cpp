// Robustness and edge-case tests across modules.
#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"
#include "isa/assembler.hpp"
#include "support/rng.hpp"

namespace dsprof {
namespace {

using machine::HwEvent;

TEST(DecodeRobustness, ArbitraryWordsNeverCrash) {
  // Every 32-bit word either decodes to a valid instruction (which must
  // re-encode to itself) or to ILLEGAL. Fuzz a million words.
  Xoshiro256 rng(1234);
  size_t valid = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const u32 w = static_cast<u32>(rng.next());
    const isa::Instr ins = isa::decode(w);
    if (ins.op == isa::Op::ILLEGAL) continue;
    ++valid;
    EXPECT_EQ(isa::encode(ins), w) << std::hex << w;
    // Disassembly of any valid instruction is printable and non-empty.
    const std::string text = isa::disassemble(ins, 0x100000000ull);
    EXPECT_FALSE(text.empty());
  }
  EXPECT_GT(valid, 100'000u);  // a decent fraction of the space is valid
}

TEST(DecodeRobustness, DisassembleIllegalIsSafe) {
  EXPECT_EQ(isa::disassemble(isa::decode(0), 0), "illegal");
}

TEST(MachineEdge, ArithmeticExtremes) {
  using namespace isa;
  // Multiplication wraps in two's complement; only division by zero traps.
  mem::Memory m;
  isa::Assembler a(mem::kTextBase);
  a.set64(O1, std::numeric_limits<i64>::min(), G7);
  a.emit(mov_ri(O2, 1));
  a.emit(alu_rr(Op::SUB, O2, G0, O2));  // %o2 = -1
  a.emit(alu_rr(Op::MULX, O0, O1, O2));
  a.emit(hcall(0));
  auto out = a.finish();
  m.add_segment({"text", mem::SegKind::Text, mem::kTextBase, round_up(out.words.size() * 4, 8),
                 false, true});
  m.write_bytes(mem::kTextBase, out.words.data(), out.words.size() * 4);
  machine::Cpu cpu(m, machine::CpuConfig{});
  cpu.set_pc(mem::kTextBase);
  const auto r = cpu.run(100);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, std::numeric_limits<i64>::min());
}

TEST(MachineEdge, BothPicsCountSimultaneously) {
  auto mod = testfix::make_chase_module(3000, 6, 8192);
  const sym::Image img = scc::compile(*mod);
  mem::Memory m;
  img.load_into(m);
  machine::CpuConfig cfg;
  cfg.hierarchy.dtlb = {8, 2, 8 * 1024};  // make DTLB misses plentiful
  machine::Cpu cpu(m, cfg);
  cpu.configure_pic(0, HwEvent::DC_rd_miss, 53);
  cpu.configure_pic(1, HwEvent::DTLB_miss, 29);
  size_t pic0 = 0, pic1 = 0;
  cpu.on_overflow = [&](const machine::OverflowDelivery& d) {
    if (d.pic == 0) {
      ++pic0;
      EXPECT_EQ(d.event, HwEvent::DC_rd_miss);
    } else if (d.pic == 1) {
      ++pic1;
      EXPECT_EQ(d.event, HwEvent::DTLB_miss);
    }
  };
  cpu.set_pc(img.entry);
  cpu.run(20'000'000);
  EXPECT_GT(pic0, 10u);
  EXPECT_GT(pic1, 2u);
  const u64 dcrm = cpu.event_total(HwEvent::DC_rd_miss);
  EXPECT_NEAR(static_cast<double>(pic0), static_cast<double>(dcrm) / 53.0,
              static_cast<double>(dcrm) / 53.0 * 0.05 + 2);
}

TEST(MachineEdge, ReconfiguringPicsMidRun) {
  auto mod = testfix::make_chase_module(2000, 30, 4096);
  const sym::Image img = scc::compile(*mod);
  mem::Memory m;
  img.load_into(m);
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {2 * 1024, 4, 32, false};
  machine::Cpu cpu(m, cfg);
  cpu.configure_pic(0, HwEvent::DC_rd_miss, 13);
  size_t events = 0;
  cpu.on_overflow = [&](const machine::OverflowDelivery&) { ++events; };
  cpu.set_pc(img.entry);
  cpu.run(300'000);  // past the build loops, into the pointer-chase phase
  const size_t before = events;
  EXPECT_GT(before, 0u);
  cpu.disable_pic(0);
  cpu.run(100'000);
  EXPECT_EQ(events, before);  // disabled: no more deliveries
  cpu.configure_pic(0, HwEvent::DC_rd_miss, 53);
  cpu.run(0);
  EXPECT_GT(events, before);  // re-enabled: counting resumes
}

TEST(HierarchyEdge, DirtyEcLinesWriteBackSilently) {
  cache::HierarchyConfig cfg;
  cfg.dcache = {1024, 1, 32, false};
  cfg.icache = {1024, 1, 32, true};
  cfg.ecache = {2048, 1, 512, true};
  cache::MemoryHierarchy h(cfg);
  // Dirty a line in the tiny E$ (4 lines), then evict it with conflicting
  // loads; nothing should fault and the stats should stay coherent.
  h.store(0x0000);
  for (u64 a = 0; a < 16 * 2048; a += 512) h.load(a);
  EXPECT_EQ(h.ecache().hits() + h.ecache().misses(), h.ecache().accesses());
}

TEST(ReportEdge, EmptyExperimentRendersCleanly) {
  // A run with no hardware counters and no clock samples must not break the
  // renderers.
  auto mod = testfix::make_chase_module(300, 1, 256);
  const sym::Image img = scc::compile(*mod);
  auto ex = testfix::quick_collect(img, "", "off");
  EXPECT_TRUE(ex.events.empty());
  analyze::Analysis a(ex);
  EXPECT_NO_THROW(analyze::render_overview(a));
  EXPECT_NO_THROW(analyze::render_function_list(a));
  EXPECT_NO_THROW(
      analyze::render_data_objects(a, static_cast<size_t>(HwEvent::EC_stall_cycles)));
  EXPECT_NO_THROW(analyze::render_effectiveness(a));
  EXPECT_TRUE(a.effectiveness().empty());
}

TEST(ReportEdge, UnknownFunctionThrows) {
  auto mod = testfix::make_chase_module(300, 1, 256);
  const sym::Image img = scc::compile(*mod);
  auto ex = testfix::quick_collect(img, "+dcrm,97");
  analyze::Analysis a(ex);
  EXPECT_THROW(a.annotated_source("no_such_function"), Error);
  EXPECT_THROW(a.annotated_disassembly("no_such_function"), Error);
  EXPECT_THROW(a.members("no_such_struct"), Error);
}

TEST(CollectEdge, MaxInstructionsStopsTheRun) {
  auto mod = testfix::make_chase_module(2000, 50, 8192);
  const sym::Image img = scc::compile(*mod);
  collect::CollectOptions opt;
  opt.hw = "+dcrm,997";
  opt.max_instructions = 100'000;
  collect::Collector c(img, opt);
  auto ex = c.run();
  EXPECT_LE(ex.total_instructions, 110'000u);
  // A truncated run still yields a consistent experiment.
  analyze::Analysis a(ex);
  EXPECT_GE(a.total()[static_cast<size_t>(HwEvent::DC_rd_miss)], 0.0);
}

TEST(CollectEdge, ClockOnlyProfilingWorks) {
  auto mod = testfix::make_chase_module(800, 4, 1024);
  const sym::Image img = scc::compile(*mod);
  auto ex = testfix::quick_collect(img, "", "9973");
  ASSERT_GT(ex.events.size(), 10u);
  for (const auto& e : ex.events) EXPECT_EQ(e.pic, machine::kClockPic);
  analyze::Analysis a(ex);
  EXPECT_GT(a.total()[analyze::kUserCpuMetric], 0.0);
  EXPECT_DOUBLE_EQ(a.data_total()[analyze::kUserCpuMetric], 0.0);
}

TEST(SccEdge, DeeplyNestedControlFlow) {
  using namespace scc;
  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto x = fb.local("x", Type::i64());
  fb.set(x, 0);
  // 8 levels of nested ifs and loops.
  std::function<void(int)> nest = [&](int depth) {
    if (depth == 0) {
      fb.set(x, x + 1);
      return;
    }
    fb.if_else(x >= 0, [&] { nest(depth - 1); }, [&] { fb.set(x, x - 1000); });
  };
  auto i = fb.local("i", Type::i64());
  fb.set(i, 0);
  fb.while_(i < 10, [&] {
    nest(8);
    fb.set(i, i + 1);
  });
  fb.ret(x);
  const sym::Image img = compile(m);
  mem::Memory mem;
  img.load_into(mem);
  machine::Cpu cpu(mem, machine::CpuConfig{});
  cpu.set_pc(img.entry);
  EXPECT_EQ(cpu.run(100000).exit_code, 10);
}

TEST(SccEdge, EmptyLoopBodiesAndConstantConditions) {
  using namespace scc;
  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto x = fb.local("x", Type::i64());
  fb.set(x, 7);
  fb.while_(Val(0) == 1, [&] { fb.set(x, 999); });  // never runs
  fb.if_(Val(1) == 1, [&] {});                      // empty body
  fb.ret(x);
  const sym::Image img = compile(m);
  mem::Memory mem;
  img.load_into(mem);
  machine::Cpu cpu(mem, machine::CpuConfig{});
  cpu.set_pc(img.entry);
  EXPECT_EQ(cpu.run(10000).exit_code, 7);
}

}  // namespace
}  // namespace dsprof
