// Static-analysis subsystem tests (src/sa):
//   * CFG reconstruction facts on compiled images,
//   * BacktrackTable vs backtrack_dynamic bit-identity — exhaustive PC
//     sweeps, the conservative annulled-delay-slot rule on a hand-assembled
//     image, and end-to-end dual-engine collection on the chase fixture and
//     the paper's MCF workloads (every backtrackable counter spec),
//   * hwcprof invariant lint: default-compiled output is lint-clean, each
//     scc codegen mutation hook fires exactly its corresponding rule,
//   * verifier report rendering (text + JSON).
#include <gtest/gtest.h>

#include "collect/collector.hpp"
#include "dsl_fixtures.hpp"
#include "mcfsim/experiments.hpp"
#include "sa/verifier.hpp"
#include "scc/compile.hpp"
#include "support/rng.hpp"

namespace dsprof::sa {
namespace {

using machine::TriggerKind;

// ---------------------------------------------------------------------------
// Helpers

sym::Image chase_image(const scc::CompileOptions& opt = {}) {
  // 2000 nodes x 24 B + 32 KB array: comfortably larger than the scaled-down
  // caches below, so every counter kind actually fires during collection.
  const auto m = testfix::make_chase_module(2000, 3, 4096);
  return scc::compile(*m, opt);
}

/// A module shaped so each codegen mutation hook has something to break:
/// a store directly before a loop-head join (nop-pad rule) and a store as
/// the last statement of a loop body (delay-slot filler candidate).
std::unique_ptr<scc::Module> make_mutation_module() {
  using namespace scc;
  auto m = std::make_unique<Module>();
  Function* mal = add_runtime(*m);
  Function* main = m->add_function("main");
  FunctionBuilder fb(*m, *main);
  auto arr = fb.local("arr", Type::ptr_i64());
  auto i = fb.local("i", Type::i64());
  fb.set(arr, cast(fb.call(mal, {Val(i64{64 * 8})}), Type::ptr_i64()));
  fb.set(i, 0);
  fb.set(arr.idx(i), 5);  // store immediately before the while-head join
  fb.while_(i < 10, [&] {
    fb.set(i, i + 1);
    fb.set(arr.idx(i), i);  // store ends the body: delay-slot candidate
  });
  fb.ret(arr.idx(0) & 0x7F);
  return m;
}

std::vector<Diag> lint_image(const sym::Image& img) {
  const Cfg cfg = Cfg::build(img);
  return lint(img, cfg);
}

/// Error-severity rule ids present in `diags` (deduplicated).
std::vector<std::string> error_rules(const std::vector<Diag>& diags) {
  std::vector<std::string> rules;
  for (const auto& d : diags) {
    if (d.severity != Severity::Error) continue;
    if (std::find(rules.begin(), rules.end(), d.rule) == rules.end()) rules.push_back(d.rule);
  }
  return rules;
}

/// Diagnostics carrying rule id `r`, any severity (the dataflow-backed rules
/// report at Warning/Info, which error_rules filters out).
size_t count_rule(const std::vector<Diag>& diags, const char* r) {
  size_t n = 0;
  for (const auto& d : diags) n += d.rule == r ? 1 : 0;
  return n;
}

void expect_engines_agree(const sym::Image& img, u32 window, u64 seed,
                          const char* label) {
  const BacktrackTable table = BacktrackTable::build(img, window);
  std::array<u64, 32> regs{};
  Xoshiro256 rng(seed);
  // Every deliverable PC (including one-past-the-end), all trigger kinds,
  // a fresh register file per word.
  for (size_t w = 0; w <= img.text_words.size(); ++w) {
    for (size_t r = 1; r < 32; ++r) regs[r] = rng.next();
    const u64 pc = img.text_base + 4 * w;
    for (const auto kind : {TriggerKind::Any, TriggerKind::Load, TriggerKind::LoadStore}) {
      const BacktrackAnswer d = collect::backtrack_dynamic(img, pc, kind, regs, window);
      const BacktrackAnswer t = table.query(pc, kind, regs);
      ASSERT_EQ(d.found, t.found) << label << " pc=" << std::hex << pc;
      ASSERT_EQ(d.candidate_pc, t.candidate_pc) << label << " pc=" << std::hex << pc;
      ASSERT_EQ(d.ea_known, t.ea_known) << label << " pc=" << std::hex << pc;
      ASSERT_EQ(d.ea, t.ea) << label << " pc=" << std::hex << pc;
    }
  }
  // Off-text and misaligned delivered PCs: both engines find nothing.
  for (const u64 pc : {img.text_base - 4, img.text_base + 2,
                       img.text_base + img.text_size() + 4, u64{0}, ~u64{0}}) {
    const BacktrackAnswer d =
        collect::backtrack_dynamic(img, pc, TriggerKind::Load, regs, window);
    const BacktrackAnswer t = table.query(pc, TriggerKind::Load, regs);
    EXPECT_EQ(d.found, t.found) << label;
    EXPECT_FALSE(t.found) << label;
    EXPECT_FALSE(t.ea_known) << label;
  }
}

void expect_same_events(const experiment::Experiment& x, const experiment::Experiment& y) {
  ASSERT_EQ(x.events.size(), y.events.size());
  for (size_t i = 0; i < x.events.size(); ++i) {
    const experiment::EventView a = x.events[i], b = y.events[i];
    ASSERT_EQ(a.pic, b.pic) << "event " << i;
    ASSERT_EQ(a.event, b.event) << "event " << i;
    ASSERT_EQ(a.weight, b.weight) << "event " << i;
    ASSERT_EQ(a.delivered_pc, b.delivered_pc) << "event " << i;
    ASSERT_EQ(a.has_candidate, b.has_candidate) << "event " << i;
    ASSERT_EQ(a.candidate_pc, b.candidate_pc) << "event " << i;
    ASSERT_EQ(a.has_ea, b.has_ea) << "event " << i;
    ASSERT_EQ(a.ea, b.ea) << "event " << i;
    ASSERT_TRUE(a.callstack == b.callstack) << "event " << i;
    ASSERT_EQ(a.seq, b.seq) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// CFG reconstruction

TEST(Cfg, ChaseImageStructure) {
  const sym::Image img = chase_image();
  const Cfg cfg = Cfg::build(img);
  EXPECT_EQ(cfg.text_base(), img.text_base);
  EXPECT_EQ(cfg.num_words(), img.text_words.size());
  ASSERT_GT(cfg.blocks().size(), 4u);
  EXPECT_GT(cfg.num_edges(), 0u);
  EXPECT_GT(cfg.reachable_blocks(), 0u);
  EXPECT_LE(cfg.reachable_blocks(), cfg.blocks().size());

  // The entry instruction is reachable and inside a reachable block.
  EXPECT_TRUE(cfg.instr_reachable(img.entry));
  const BasicBlock* entry_blk = cfg.block_at(img.entry);
  ASSERT_NE(entry_blk, nullptr);
  EXPECT_TRUE(entry_blk->reachable);

  // Outside the text segment there is no block.
  EXPECT_EQ(cfg.block_at(img.text_base - 4), nullptr);
  EXPECT_EQ(cfg.block_at(img.text_base + img.text_size()), nullptr);

  // Delay-slot facts match a direct decode of the text.
  size_t slots = 0;
  for (size_t w = 0; w + 1 < img.text_words.size(); ++w) {
    const isa::Instr ins = isa::decode(img.text_words[w]);
    if (isa::op_info(ins.op).delayed) {
      EXPECT_TRUE(cfg.is_delay_slot(img.text_base + 4 * (w + 1)))
          << "word " << w + 1 << " follows a delayed transfer";
      ++slots;
    }
  }
  EXPECT_GT(slots, 0u);
  EXPECT_FALSE(cfg.is_delay_slot(img.entry));

  // Blocks tile the text: every word belongs to exactly one block.
  size_t covered = 0;
  for (const auto& blk : cfg.blocks()) {
    EXPECT_LT(blk.lo, blk.hi);
    covered += (blk.hi - blk.lo) / 4;
    for (u64 pc = blk.lo; pc < blk.hi; pc += 4) EXPECT_EQ(cfg.block_at(pc), &blk);
  }
  EXPECT_EQ(covered, img.text_words.size());
}

TEST(Cfg, SuccessorEdgesPointAtBlockStarts) {
  const sym::Image img = chase_image();
  const Cfg cfg = Cfg::build(img);
  for (const auto& blk : cfg.blocks()) {
    for (u32 s : blk.succ) {
      ASSERT_LT(s, cfg.blocks().size());
      // A reachable block only reaches other reachable blocks.
      if (blk.reachable) EXPECT_TRUE(cfg.blocks()[s].reachable);
    }
  }
}

// ---------------------------------------------------------------------------
// BacktrackTable bit-identity with the dynamic reference

TEST(BacktrackTable, MatchesDynamicExhaustivelyOnChaseImage) {
  expect_engines_agree(chase_image(), 16, 0xc0ffee, "chase");
}

TEST(BacktrackTable, MatchesDynamicExhaustivelyOnMcfImage) {
  expect_engines_agree(mcfsim::build_mcf_image(), 16, 0xfeed, "mcf");
}

TEST(BacktrackTable, MatchesDynamicAcrossWindowSizes) {
  const sym::Image img = chase_image();
  for (const u32 window : {1u, 2u, 4u, 8u, 32u}) {
    expect_engines_agree(img, window, 0xabad1dea + window, "chase/window");
  }
}

TEST(BacktrackTable, CoverageCountsMatchSweep) {
  const sym::Image img = chase_image();
  const BacktrackTable table = BacktrackTable::build(img, 16);
  const std::array<u64, 32> regs{};
  for (const auto kind : {TriggerKind::Load, TriggerKind::LoadStore}) {
    size_t found = 0, ea = 0;
    for (size_t w = 0; w <= img.text_words.size(); ++w) {
      const BacktrackAnswer a = table.query(img.text_base + 4 * w, kind, regs);
      found += a.found ? 1 : 0;
      ea += a.ea_known ? 1 : 0;
    }
    EXPECT_EQ(table.count_found(kind), found);
    EXPECT_EQ(table.count_ea_static(kind), ea);
  }
  EXPECT_EQ(table.count_found(TriggerKind::Any), 0u);
  EXPECT_EQ(table.window(), 16u);
  EXPECT_EQ(table.num_entries(), 2 * (img.text_words.size() + 1));
}

// The conservative annulled-delay-slot rule (collect/collector.hpp): an
// instruction sitting in the delay slot of an annulling branch is treated as
// an executed register writer even though the machine may have annulled it.
// Hand-assembled so the slot provably writes the load's base register.
TEST(BacktrackTable, AnnulledDelaySlotClobberIsConservative) {
  using namespace isa;
  auto build = [](Instr slot_instr) {
    sym::Image img;
    img.text_words = {
        encode(load_ri(Op::LDX, O0, L1, 8)),          // w0: candidate (EA = %l1 + 8)
        encode(branch(Cond::E, 12, /*annul=*/true)),  // w1: be,a — slot annulled if untaken
        encode(slot_instr),                           // w2: the (possibly annulled) slot
        encode(nop()),                                // w3: delivered PC for the queries
        encode(hcall(0)),                             // w4: exit
        encode(nop()),
    };
    img.entry = img.text_base;
    return img;
  };

  std::array<u64, 32> regs{};
  regs[L1] = 0x5000;
  const u64 delivered = mem::kTextBase + 12;  // word 3

  // Slot writes the base register %l1: the clobber scan must drop the EA
  // even though the write may have been annulled at run time — a lost
  // sample, never a wrong address.
  {
    const sym::Image img = build(mov_ri(L1, 5));
    const BacktrackTable table = BacktrackTable::build(img, 16);
    const BacktrackAnswer d =
        collect::backtrack_dynamic(img, delivered, TriggerKind::Load, regs, 16);
    const BacktrackAnswer t = table.query(delivered, TriggerKind::Load, regs);
    EXPECT_TRUE(d.found);
    EXPECT_EQ(d.candidate_pc, img.text_base);
    EXPECT_FALSE(d.ea_known) << "annulled-slot write must be treated as a clobber";
    EXPECT_EQ(d.found, t.found);
    EXPECT_EQ(d.candidate_pc, t.candidate_pc);
    EXPECT_EQ(d.ea_known, t.ea_known);
    EXPECT_EQ(d.ea, t.ea);
  }

  // Control: the slot writes an unrelated register — the EA survives and is
  // recomputed from the delivered snapshot identically by both engines.
  {
    const sym::Image img = build(mov_ri(L2, 5));
    const BacktrackTable table = BacktrackTable::build(img, 16);
    const BacktrackAnswer d =
        collect::backtrack_dynamic(img, delivered, TriggerKind::Load, regs, 16);
    const BacktrackAnswer t = table.query(delivered, TriggerKind::Load, regs);
    EXPECT_TRUE(d.found);
    EXPECT_TRUE(d.ea_known);
    EXPECT_EQ(d.ea, 0x5008u);
    EXPECT_EQ(d.found, t.found);
    EXPECT_EQ(d.candidate_pc, t.candidate_pc);
    EXPECT_EQ(d.ea_known, t.ea_known);
    EXPECT_EQ(d.ea, t.ea);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: both collector engines produce identical experiments

machine::CpuConfig small_caches() {
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {4 * 1024, 4, 32, false};
  cfg.hierarchy.ecache = {32 * 1024, 2, 512, true};
  // 4 entries against a ~10-page working set: the DTLB thrashes, so the
  // precise dtlbm counter overflows often enough to generate events.
  cfg.hierarchy.dtlb = {4, 2, 8 * 1024};
  return cfg;
}

experiment::Experiment collect_with_engine(const sym::Image& img, const std::string& hw,
                                           collect::BacktrackEngine engine) {
  collect::CollectOptions opt;
  opt.hw = hw;
  opt.clock = "off";
  opt.cpu = small_caches();
  opt.backtrack_engine = engine;
  collect::Collector c(img, opt);
  return c.run();
}

TEST(BacktrackTable, CollectorEnginesAgreeForEveryBacktrackableCounter) {
  const sym::Image img = chase_image();
  // Every counter whose trigger kind is searchable, one spec per PIC rule.
  for (const char* spec : {"+dcrm,97", "+dcwm,97", "+ecref,193", "+ecrm,97",
                           "+ecstall,1009", "+dtlbm,13"}) {
    const auto table = collect_with_engine(img, spec, collect::BacktrackEngine::Table);
    const auto dynamic = collect_with_engine(img, spec, collect::BacktrackEngine::Dynamic);
    ASSERT_GT(table.events.size(), 0u) << spec;
    expect_same_events(table, dynamic);
  }
}

TEST(BacktrackTable, CollectorEnginesAgreeOnPaperMcfWorkloads) {
  // The FIG1-FIG7 benches all consume the paper's two collect command lines
  // (§3.1). Replicate both on the small setup under each engine.
  const auto s = mcfsim::PaperSetup::small();
  const sym::Image img = mcfsim::build_mcf_image(s.build);
  auto collect_one = [&](const std::string& hw, const std::string& clock,
                         collect::BacktrackEngine engine) {
    collect::CollectOptions opt;
    opt.hw = hw;
    opt.clock = clock;
    opt.cpu = s.cpu;
    opt.backtrack_engine = engine;
    collect::Collector c(img, opt);
    return c.run([&](machine::Cpu& cpu) { mcfsim::write_input(cpu.memory(), s.run); });
  };
  {
    const auto t = collect_one("+ecstall,20011,+ecrm,211", "hi", collect::BacktrackEngine::Table);
    const auto d =
        collect_one("+ecstall,20011,+ecrm,211", "hi", collect::BacktrackEngine::Dynamic);
    ASSERT_GT(t.events.size(), 0u);
    expect_same_events(t, d);
  }
  {
    const auto t = collect_one("+ecref,997,+dtlbm,101", "off", collect::BacktrackEngine::Table);
    const auto d =
        collect_one("+ecref,997,+dtlbm,101", "off", collect::BacktrackEngine::Dynamic);
    ASSERT_GT(t.events.size(), 0u);
    expect_same_events(t, d);
  }
}

// ---------------------------------------------------------------------------
// Lint: default output is clean; each mutation fires exactly its rule

TEST(Lint, DefaultCompiledImagesAreLintClean) {
  for (const sym::Image& img :
       {chase_image(), scc::compile(*make_mutation_module()), mcfsim::build_mcf_image()}) {
    const auto diags = lint_image(img);
    EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
  }
}

TEST(Lint, MutationHooksDefaultOffAndChangeNothing) {
  const auto m = make_mutation_module();
  const sym::Image a = scc::compile(*m);
  scc::CompileOptions explicit_off;
  explicit_off.mutate_skip_nop_pad = false;
  explicit_off.mutate_mem_in_delay_slot = false;
  explicit_off.mutate_skip_memref = false;
  explicit_off.mutate_self_clobber_load = false;
  explicit_off.mutate_dead_register_write = false;
  explicit_off.mutate_clobber_ea_early = false;
  const sym::Image b = scc::compile(*m, explicit_off);
  EXPECT_EQ(a.text_words, b.text_words);
}

TEST(Lint, SkipNopPadMutationFiresExactlyMissingNopPad) {
  scc::CompileOptions opt;
  opt.mutate_skip_nop_pad = true;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  const auto rules = error_rules(diags);
  ASSERT_EQ(rules.size(), 1u) << "exactly one rule must fire";
  EXPECT_EQ(rules[0], rule::kMissingNopPad);
}

TEST(Lint, MemInDelaySlotMutationFiresExactlyThatRule) {
  scc::CompileOptions opt;
  opt.mutate_mem_in_delay_slot = true;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  const auto rules = error_rules(diags);
  ASSERT_EQ(rules.size(), 1u) << "exactly one rule must fire";
  EXPECT_EQ(rules[0], rule::kMemOpInDelaySlot);
}

TEST(Lint, SkipMemrefMutationFiresExactlyMissingDescriptor) {
  scc::CompileOptions opt;
  opt.mutate_skip_memref = true;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  const auto rules = error_rules(diags);
  ASSERT_EQ(rules.size(), 1u) << "exactly one rule must fire";
  EXPECT_EQ(rules[0], rule::kMissingDescriptor);
}

TEST(Lint, SelfClobberMutationFiresUnprofilableLoad) {
  // The mutation loads into the address register itself: no delivery after
  // the load can statically recover its EA, so the coverage classifier must
  // demote it from Attributable and the unprofilable-load rule must fire.
  const auto clean = lint_image(scc::compile(*make_mutation_module()));
  EXPECT_EQ(count_rule(clean, rule::kUnprofilableLoad), 0u);

  scc::CompileOptions opt;
  opt.mutate_self_clobber_load = true;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  EXPECT_GT(count_rule(diags, rule::kUnprofilableLoad), 0u);
  EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
}

TEST(Lint, DeadRegisterWriteMutationFiresThatRule) {
  // The mutation writes a constant into the call-result temp one instruction
  // before the real %o0 move overwrites it — dead on every path.
  const auto clean = lint_image(scc::compile(*make_mutation_module()));
  EXPECT_EQ(count_rule(clean, rule::kDeadRegisterWrite), 0u);

  scc::CompileOptions opt;
  opt.mutate_dead_register_write = true;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  EXPECT_GT(count_rule(diags, rule::kDeadRegisterWrite), 0u);
  EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
}

TEST(Lint, ClobberEaEarlyMutationFiresClobberDepthInfo) {
  // The identity %sp move after each stack-slot load preserves semantics (so
  // the load stays Attributable via the delivery right after it) but is a
  // clobber-scan writer of the load's EA register at distance 1 — the
  // minimum-headroom rule must flag it at Info. Needs a frame-homed local:
  // the first 14 locals live in registers and are never loaded, and
  // temp-based Deref loads already sit at depth 1 from register recycling,
  // so only %sp-relative loads make the mutation observable.
  auto make_spill_module = [] {
    using namespace scc;
    auto m = std::make_unique<Module>();
    Function* main = m->add_function("main");
    FunctionBuilder fb(*m, *main);
    for (int k = 0; k < 14; ++k) fb.local("pad" + std::to_string(k), Type::i64());
    auto s = fb.local("spilled", Type::i64());
    fb.set(s, 3);
    fb.ret(s & 0x7F);  // reading `s` is a stack load off %sp
    return m;
  };
  const auto clean = lint_image(scc::compile(*make_spill_module()));
  const size_t baseline = count_rule(clean, rule::kEaClobberDepth);

  scc::CompileOptions opt;
  opt.mutate_clobber_ea_early = true;
  const auto diags = lint_image(scc::compile(*make_spill_module(), opt));
  EXPECT_GT(count_rule(diags, rule::kEaClobberDepth), baseline);
  EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
  // The identity move must not read as a dead write or demote coverage.
  EXPECT_EQ(count_rule(diags, rule::kDeadRegisterWrite), 0u);
  EXPECT_EQ(count_rule(diags, rule::kUnprofilableLoad),
            count_rule(clean, rule::kUnprofilableLoad));
}

TEST(Lint, NonHwcprofImagesAreNotHeldToTheContract) {
  // Without -xhwcprof the compiler never promised the contract: delay slots
  // may legally hold memory ops and no descriptors exist. The contract rules
  // must gate off (the paper's "(Unascertainable)" case, not an error).
  scc::CompileOptions opt;
  opt.hwcprof = false;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
}

TEST(Lint, NoDwarfGatesJoinTableRules) {
  scc::CompileOptions opt;
  opt.dwarf = false;
  const auto diags = lint_image(scc::compile(*make_mutation_module(), opt));
  EXPECT_EQ(count_severity(diags, Severity::Error), 0u);
}

TEST(Lint, SelfClobberingLoadIsWarnedStatically) {
  using namespace isa;
  sym::Image img;
  img.text_words = {
      encode(load_ri(Op::LDX, L1, L1, 8)),  // ldx [%l1 + 8], %l1 — base clobber
      encode(hcall(0)),
      encode(nop()),
  };
  img.entry = img.text_base;
  img.symtab.set_hwcprof(false);  // keep the contract rules out of the way
  img.symtab.set_has_branch_targets(false);
  const auto diags = lint_image(img);
  bool saw = false;
  for (const auto& d : diags) {
    if (d.rule == rule::kUnprofilableLoad) {
      saw = true;
      EXPECT_EQ(d.pc, img.text_base);
      EXPECT_EQ(d.severity, Severity::Warning);
    }
  }
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Verifier report

TEST(Verifier, ReportFactsAndRenderings) {
  const sym::Image img = chase_image();
  const VerifyReport r = verify(img, "chase");
  EXPECT_EQ(r.name, "chase");
  EXPECT_EQ(r.text_words, img.text_words.size());
  EXPECT_TRUE(r.hwcprof);
  EXPECT_TRUE(r.has_branch_targets);
  EXPECT_GT(r.num_blocks, 0u);
  EXPECT_GT(r.load_found, 0u);
  EXPECT_GT(r.loadstore_found, r.load_found - 1);  // loadstore is a superset
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_TRUE(r.clean());

  const std::string text = to_text(r);
  EXPECT_NE(text.find("chase"), std::string::npos);
  EXPECT_NE(text.find("verdict: OK"), std::string::npos);

  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"chase\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
}

TEST(Verifier, MutatedImageFailsTheVerdict) {
  scc::CompileOptions opt;
  opt.mutate_mem_in_delay_slot = true;
  const VerifyReport r = verify(scc::compile(*make_mutation_module(), opt), "mutant");
  EXPECT_GT(r.errors(), 0u);
  EXPECT_FALSE(r.clean());
  EXPECT_NE(to_text(r).find("verdict: FAIL"), std::string::npos);
  EXPECT_NE(to_json(r).find("\"clean\":false"), std::string::npos);
}

}  // namespace
}  // namespace dsprof::sa
