// Randomized differential testing of the scc compiler: generate random
// programs while simultaneously evaluating them on the host; the compiled
// DSL program must produce identical results on the simulated machine.
#include <gtest/gtest.h>

#include "collect/collector.hpp"
#include "machine/cpu.hpp"
#include "sa/dataflow.hpp"
#include "sa/lint.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"
#include "support/rng.hpp"

namespace dsprof::scc {
namespace {

std::vector<i64> run_and_trace(const Module& m, u64 max_instr = 2'000'000) {
  const sym::Image img = compile(m);
  mem::Memory mem;
  img.load_into(mem);
  machine::Cpu cpu(mem, machine::CpuConfig{});
  cpu.set_truth_log_enabled(false);
  cpu.set_pc(img.entry);
  const machine::RunResult r = cpu.run(max_instr);
  EXPECT_TRUE(r.halted);
  return cpu.trace();
}

/// Host-side evaluation with the DSL's semantics (i64 wraparound,
/// truncating division, arithmetic right shift).
i64 host_binop(int op, i64 a, i64 b) {
  const u64 ua = static_cast<u64>(a);
  const u64 ub = static_cast<u64>(b);
  switch (op) {
    case 0: return static_cast<i64>(ua + ub);
    case 1: return static_cast<i64>(ua - ub);
    case 2: return static_cast<i64>(ua * ub);
    case 3: return static_cast<i64>(ua & ub);
    case 4: return static_cast<i64>(ua | ub);
    case 5: return static_cast<i64>(ua ^ ub);
    case 6: return static_cast<i64>(ua << (ub & 15));
    case 7: return a >> (b & 15);
    case 8: return a < b ? 1 : 0;
    case 9: return a <= b ? 1 : 0;
    case 10: return a == b ? 1 : 0;
    case 11: return a != b ? 1 : 0;
    case 12: return a / (b | 1);  // divisor forced odd-nonzero
    case 13: return a % (b | 1);
    default: fail("bad op");
  }
}

Val dsl_binop(int op, Val a, Val b) {
  switch (op) {
    case 0: return a + b;
    case 1: return a - b;
    case 2: return a * b;
    case 3: return a & b;
    case 4: return a | b;
    case 5: return a ^ b;
    case 6: return a << (b & 15);
    case 7: return a >> (b & 15);
    case 8: return a < b;
    case 9: return a <= b;
    case 10: return a == b;
    case 11: return a != b;
    case 12: return a / (b | 1);
    case 13: return a % (b | 1);
    default: fail("bad op");
  }
}

class ExprFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ExprFuzz, StraightLineProgramsMatchHostEvaluation) {
  Xoshiro256 rng(GetParam());
  constexpr int kVars = 6;
  constexpr int kStmts = 60;

  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);

  std::vector<Val> vars;
  std::vector<i64> host(kVars);
  for (int v = 0; v < kVars; ++v) {
    vars.push_back(fb.local("v" + std::to_string(v), Type::i64()));
    host[static_cast<size_t>(v)] = static_cast<i64>(rng.next() % 2001) - 1000;
    fb.set(vars[static_cast<size_t>(v)], Val(host[static_cast<size_t>(v)]));
  }

  // Random expression of bounded depth over variables and small constants,
  // evaluated in lockstep on the host.
  std::function<std::pair<Val, i64>(int)> gen = [&](int depth) -> std::pair<Val, i64> {
    const u64 choice = rng.below(depth == 0 ? 2 : 3);
    if (choice == 0) {
      const auto v = static_cast<size_t>(rng.below(kVars));
      return {vars[v], host[v]};
    }
    if (choice == 1) {
      const i64 c = static_cast<i64>(rng.next() % 201) - 100;
      return {Val(c), c};
    }
    const int op = static_cast<int>(rng.below(14));
    auto [la, lh] = gen(depth - 1);
    auto [ra, rh] = gen(depth - 1);
    return {dsl_binop(op, la, ra), host_binop(op, lh, rh)};
  };

  for (int s = 0; s < kStmts; ++s) {
    const auto target = static_cast<size_t>(rng.below(kVars));
    auto [expr, value] = gen(3);
    fb.set(vars[target], expr);
    host[target] = value;
  }
  for (int v = 0; v < kVars; ++v) fb.trace(vars[static_cast<size_t>(v)]);
  fb.ret(Val(0));

  const std::vector<i64> trace = run_and_trace(m);
  ASSERT_EQ(trace.size(), static_cast<size_t>(kVars));
  for (int v = 0; v < kVars; ++v) {
    EXPECT_EQ(trace[static_cast<size_t>(v)], host[static_cast<size_t>(v)])
        << "variable v" << v << " seed " << GetParam();
  }
}

TEST_P(ExprFuzz, BranchyProgramsMatchHostEvaluation) {
  Xoshiro256 rng(GetParam() * 2654435761u + 17);
  constexpr int kVars = 4;

  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  std::vector<Val> vars;
  std::vector<i64> host(kVars);
  for (int v = 0; v < kVars; ++v) {
    vars.push_back(fb.local("v" + std::to_string(v), Type::i64()));
    host[static_cast<size_t>(v)] = static_cast<i64>(rng.next() % 101) - 50;
    fb.set(vars[static_cast<size_t>(v)], Val(host[static_cast<size_t>(v)]));
  }

  for (int s = 0; s < 25; ++s) {
    const auto a = static_cast<size_t>(rng.below(kVars));
    const auto b = static_cast<size_t>(rng.below(kVars));
    const auto t = static_cast<size_t>(rng.below(kVars));
    const i64 addend = static_cast<i64>(rng.next() % 41) - 20;
    const int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {
      // if (va < vb) vt += c; else vt -= c;
      fb.if_else(vars[a] < vars[b],
                 [&] { fb.set(vars[t], vars[t] + addend); },
                 [&] { fb.set(vars[t], vars[t] - addend); });
      if (host[a] < host[b]) host[t] += addend; else host[t] -= addend;
    } else if (kind == 1) {
      // bounded while: while (vt < limit) vt += step;
      const i64 limit = host[t] + static_cast<i64>(rng.below(300));
      const i64 step = 1 + static_cast<i64>(rng.below(7));
      fb.while_(vars[t] < limit, [&] { fb.set(vars[t], vars[t] + step); });
      while (host[t] < limit) host[t] += step;
    } else {
      // vt = va op vb
      const int op = static_cast<int>(rng.below(14));
      fb.set(vars[t], dsl_binop(op, vars[a], vars[b]));
      host[t] = host_binop(op, host[a], host[b]);
    }
  }
  for (int v = 0; v < kVars; ++v) fb.trace(vars[static_cast<size_t>(v)]);
  fb.ret(Val(0));

  const std::vector<i64> trace = run_and_trace(m);
  ASSERT_EQ(trace.size(), static_cast<size_t>(kVars));
  for (int v = 0; v < kVars; ++v) {
    EXPECT_EQ(trace[static_cast<size_t>(v)], host[static_cast<size_t>(v)])
        << "variable v" << v << " seed " << GetParam();
  }
}

TEST_P(ExprFuzz, StructArrayProgramsMatchHostMirror) {
  Xoshiro256 rng(GetParam() * 40503 + 7);
  constexpr i64 kCount = 64;

  Module m;
  StructDef* cell = m.add_struct("cell");
  cell->field("a", Type::i64()).field("b", Type::i64()).field("c", Type::i64());
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto arr = fb.local("arr", Type::ptr(cell));
  fb.set(arr, cast(fb.call(mal, {Val(kCount * static_cast<i64>(cell->size()))}),
                   Type::ptr(cell)));

  struct HostCell {
    i64 a = 0, b = 0, c = 0;
  };
  std::vector<HostCell> mirror(kCount);
  const char* fields[3] = {"a", "b", "c"};

  for (int s = 0; s < 80; ++s) {
    const i64 i = static_cast<i64>(rng.below(kCount));
    const i64 j = static_cast<i64>(rng.below(kCount));
    const int fsrc = static_cast<int>(rng.below(3));
    const int fdst = static_cast<int>(rng.below(3));
    const i64 c = static_cast<i64>(rng.next() % 1001) - 500;
    // arr[i].fdst = arr[j].fsrc + c
    fb.set((arr + i)[fields[fdst]], (arr + j)[fields[fsrc]] + c);
    i64* dst = fdst == 0 ? &mirror[static_cast<size_t>(i)].a
               : fdst == 1 ? &mirror[static_cast<size_t>(i)].b
                           : &mirror[static_cast<size_t>(i)].c;
    const i64 src = fsrc == 0 ? mirror[static_cast<size_t>(j)].a
                    : fsrc == 1 ? mirror[static_cast<size_t>(j)].b
                                : mirror[static_cast<size_t>(j)].c;
    *dst = static_cast<i64>(static_cast<u64>(src) + static_cast<u64>(c));
  }
  // Checksum every field.
  auto sum = fb.local("sum", Type::i64());
  auto i = fb.local("i", Type::i64());
  fb.set(sum, 0);
  fb.set(i, 0);
  fb.while_(i < kCount, [&] {
    fb.set(sum, sum + (arr + i)["a"] + (arr + i)["b"] * 3 + (arr + i)["c"] * 7);
    fb.set(i, i + 1);
  });
  fb.trace(sum);
  fb.ret(Val(0));

  u64 host_sum = 0;
  for (const auto& hc : mirror) {
    host_sum += static_cast<u64>(hc.a) + static_cast<u64>(hc.b) * 3 + static_cast<u64>(hc.c) * 7;
  }
  const std::vector<i64> trace = run_and_trace(m);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(static_cast<u64>(trace[0]), host_sum) << "seed " << GetParam();
}

// Property: on random compiled images, the precomputed sa::BacktrackTable is
// bit-identical to the dynamic reference search for every deliverable PC,
// trigger kind, window size, and register file — and the default-compiled
// output stays hwcprof-lint-clean (no error-severity diagnostics).
TEST_P(ExprFuzz, BacktrackTableMatchesDynamicOnRandomImages) {
  Xoshiro256 rng(GetParam() * 6364136223846793005ULL + 3);
  constexpr i64 kCells = 48;

  // Random control flow over a struct array: loops, branches, loads/stores
  // in bodies and tails — the shapes that stress delay-slot filling, nop
  // padding, and the skid-gap clobber scan.
  Module m;
  StructDef* cell = m.add_struct("cell");
  cell->field("a", Type::i64()).field("b", Type::i64());
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto arr = fb.local("arr", Type::ptr(cell));
  auto i = fb.local("i", Type::i64());
  auto acc = fb.local("acc", Type::i64());
  fb.set(arr, cast(fb.call(mal, {Val(kCells * static_cast<i64>(cell->size()))}),
                   Type::ptr(cell)));
  fb.set(acc, 0);
  for (int s = 0; s < 20; ++s) {
    const i64 j = static_cast<i64>(rng.below(kCells));
    const i64 c = static_cast<i64>(rng.next() % 257) - 128;
    switch (rng.below(4)) {
      case 0:  // loop whose body ends with a store
        fb.set(i, 0);
        fb.while_(i < 1 + static_cast<i64>(rng.below(6)), [&] {
          fb.set((arr + j)["a"], (arr + j)["a"] + c);
          fb.set(i, i + 1);
        });
        break;
      case 1:  // branch with memory on one side
        fb.if_else(acc < c, [&] { fb.set(acc, acc + (arr + j)["b"]); },
                   [&] { fb.set(acc, acc - c); });
        break;
      case 2:  // straight-line load/store pair
        fb.set((arr + j)["b"], (arr + j)["a"] ^ c);
        break;
      default:  // ALU-only stretch (varies the pad/skid distances)
        fb.set(acc, acc * 3 + c);
        break;
    }
  }
  fb.ret(acc & 0x7F);
  const sym::Image img = compile(m);

  // Lint: unmodified compiler output must be free of error diagnostics.
  const sa::Cfg cfg = sa::Cfg::build(img);
  const auto diags = sa::lint(img, cfg);
  EXPECT_EQ(sa::count_severity(diags, sa::Severity::Error), 0u) << "seed " << GetParam();

  // Bit-identity sweep: every deliverable PC x both searchable kinds, with
  // fresh random registers per PC, across two window sizes.
  std::array<u64, 32> regs{};
  for (const u32 window : {4u, 16u}) {
    const sa::BacktrackTable table = sa::BacktrackTable::build(img, window);
    for (size_t w = 0; w <= img.text_words.size(); ++w) {
      for (size_t r = 1; r < 32; ++r) regs[r] = rng.next();
      const u64 pc = img.text_base + 4 * w;
      for (const auto kind :
           {machine::TriggerKind::Load, machine::TriggerKind::LoadStore}) {
        const sa::BacktrackAnswer d =
            collect::backtrack_dynamic(img, pc, kind, regs, window);
        const sa::BacktrackAnswer t = table.query(pc, kind, regs);
        ASSERT_EQ(d.found, t.found)
            << "seed " << GetParam() << " window " << window << " pc " << std::hex << pc;
        ASSERT_EQ(d.candidate_pc, t.candidate_pc)
            << "seed " << GetParam() << " window " << window << " pc " << std::hex << pc;
        ASSERT_EQ(d.ea_known, t.ea_known)
            << "seed " << GetParam() << " window " << window << " pc " << std::hex << pc;
        ASSERT_EQ(d.ea, t.ea)
            << "seed " << GetParam() << " window " << window << " pc " << std::hex << pc;
      }
    }
  }
}

// Property: the static attribution-coverage proof is conservative on random
// compiled images. Ground truth comes from single-stepping the machine: every
// PC it is about to issue (the value a counter delivery would report) must lie
// in the static delivery set, and — since both engines are bit-identical
// (above) — every delivered PC whose table entry statically recovers an EA
// must have its candidate classified Attributable.
TEST_P(ExprFuzz, StaticCoverageIsConservativeOnRandomImages) {
  Xoshiro256 rng(GetParam() * 0x9e3779b97f4a7c15ULL + 11);
  constexpr i64 kCells = 32;

  Module m;
  StructDef* cell = m.add_struct("cell");
  cell->field("a", Type::i64()).field("b", Type::i64());
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto arr = fb.local("arr", Type::ptr(cell));
  auto i = fb.local("i", Type::i64());
  auto acc = fb.local("acc", Type::i64());
  fb.set(arr, cast(fb.call(mal, {Val(kCells * static_cast<i64>(cell->size()))}),
                   Type::ptr(cell)));
  fb.set(acc, 0);
  for (int s = 0; s < 12; ++s) {
    const i64 j = static_cast<i64>(rng.below(kCells));
    const i64 c = static_cast<i64>(rng.next() % 257) - 128;
    switch (rng.below(3)) {
      case 0:
        fb.set(i, 0);
        fb.while_(i < 1 + static_cast<i64>(rng.below(4)), [&] {
          fb.set((arr + j)["a"], (arr + j)["a"] + c);
          fb.set(i, i + 1);
        });
        break;
      case 1:
        fb.if_else(acc < c, [&] { fb.set(acc, acc + (arr + j)["b"]); },
                   [&] { fb.set((arr + j)["b"], acc - c); });
        break;
      default:
        fb.set(acc, acc * 5 + c);
        break;
    }
  }
  fb.ret(acc & 0x7F);
  const sym::Image img = compile(m);

  const sa::Cfg cfg = sa::Cfg::build(img);
  const sa::BacktrackTable table = sa::BacktrackTable::build(img, 16);
  const sa::AttributionCoverage cov = sa::AttributionCoverage::build(img, cfg, table);

  // Dynamic half: single-step the program, checking the next-to-issue PC.
  mem::Memory memory;
  img.load_into(memory);
  machine::Cpu cpu(memory, machine::CpuConfig{});
  cpu.set_truth_log_enabled(false);
  cpu.set_pc(img.entry);
  for (size_t steps = 0; steps < 500'000; ++steps) {
    ASSERT_TRUE(cov.is_delivery_point(cpu.pc()))
        << "seed " << GetParam() << " issued pc " << std::hex << cpu.pc();
    if (cpu.run(1).halted) break;
  }
  EXPECT_TRUE(cov.is_delivery_point(cpu.pc())) << "seed " << GetParam();

  // Static half: at every delivery point, a table entry that statically
  // recovers an EA must name an Attributable candidate; one that resolves a
  // candidate at all must never name an op classified Unknown.
  const std::array<u64, 32> regs{};
  for (size_t w = 0; w <= img.text_words.size(); ++w) {
    const u64 pc = img.text_base + 4 * w;
    if (!cov.is_delivery_point(pc)) continue;
    for (const auto kind :
         {machine::TriggerKind::Load, machine::TriggerKind::LoadStore}) {
      const sa::BacktrackAnswer t = table.query(pc, kind, regs);
      if (!t.found) continue;
      const sa::MemOpFact* op = cov.find(t.candidate_pc);
      ASSERT_NE(op, nullptr) << "seed " << GetParam() << " pc " << std::hex << pc;
      EXPECT_NE(op->cls, sa::EaClass::Unknown)
          << "seed " << GetParam() << " pc " << std::hex << pc;
      if (t.ea_known) {
        EXPECT_EQ(op->cls, sa::EaClass::Attributable)
            << "seed " << GetParam() << " candidate " << std::hex << t.candidate_pc;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Range<u64>(1, 21));

}  // namespace
}  // namespace dsprof::scc
