#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "machine/cpu.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

namespace dsprof::scc {
namespace {

using machine::Cpu;
using machine::CpuConfig;

struct RunOutcome {
  i64 exit_code = 0;
  std::vector<i64> trace;
  std::string output;
  u64 instructions = 0;
  sym::Image image;
};

RunOutcome run_module(const Module& m, CompileOptions opt = {}, u64 max_instr = 5'000'000) {
  RunOutcome out;
  out.image = compile(m, opt);
  mem::Memory mem;
  out.image.load_into(mem);
  Cpu cpu(mem, CpuConfig{});
  cpu.set_pc(out.image.entry);
  const machine::RunResult r = cpu.run(max_instr);
  EXPECT_TRUE(r.halted) << "program did not exit within " << max_instr << " instructions";
  out.exit_code = r.exit_code;
  out.trace = cpu.trace();
  out.output = cpu.output();
  out.instructions = r.instructions;
  return out;
}

i64 run_main_returning(const std::function<void(Module&, FunctionBuilder&)>& body,
                       CompileOptions opt = {}) {
  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  body(m, fb);
  return run_module(m, opt).exit_code;
}

TEST(Compile, ReturnConstant) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) { fb.ret(Val(42)); }), 42);
}

TEST(Compile, BigConstants) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              fb.ret(Val(i64{0x123456789})) ;
            }),
            0x123456789);
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) { fb.ret(Val(-123456789)); }),
            -123456789);
}

TEST(Compile, Arithmetic) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              auto b = fb.local("b", Type::i64());
              fb.set(a, 17);
              fb.set(b, 5);
              fb.ret((a + b) * 2 - a / b - a % b);  // 44 - 3 - 2 = 39
            }),
            39);
}

TEST(Compile, NegativeDivisionAndMod) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, -17);
              fb.trace(a / 5);   // -3 (truncating)
              fb.trace(a % 5);   // -2
              fb.ret(Val(0));
            }),
            0);
  Module m;
  Function* main = m.add_function("main");
  FunctionBuilder fb(m, *main);
  auto a = fb.local("a", Type::i64());
  fb.set(a, -17);
  fb.trace(a / 5);
  fb.trace(a % 5);
  fb.ret(Val(0));
  const RunOutcome out = run_module(m);
  ASSERT_EQ(out.trace.size(), 2u);
  EXPECT_EQ(out.trace[0], -3);
  EXPECT_EQ(out.trace[1], -2);
}

TEST(Compile, BitOpsAndShifts) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, 0b110100);
              fb.ret(((a & 0b111000) | 1) ^ 0b10);  // 0b110000|1=0b110001 ^ 0b10 = 0b110011
            }),
            0b110011);
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, -64);
              fb.ret(a >> 3);  // arithmetic shift
            }),
            -8);
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, 3);
              fb.ret(a << 10);
            }),
            3072);
}

TEST(Compile, IfElse) {
  for (i64 x : {3, 9}) {
    EXPECT_EQ(run_main_returning([&](Module&, FunctionBuilder& fb) {
                auto a = fb.local("a", Type::i64());
                fb.set(a, x);
                fb.if_else(a < 5, [&] { fb.ret(Val(100)); }, [&] { fb.ret(Val(200)); });
              }),
              x < 5 ? 100 : 200);
  }
}

TEST(Compile, WhileLoopSum) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto i = fb.local("i", Type::i64());
              auto sum = fb.local("sum", Type::i64());
              fb.set(i, 1);
              fb.set(sum, 0);
              fb.while_(i <= 100, [&] {
                fb.set(sum, sum + i);
                fb.set(i, i + 1);
              });
              fb.ret(sum);
            }),
            5050);
}

TEST(Compile, BreakAndContinue) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto i = fb.local("i", Type::i64());
              auto sum = fb.local("sum", Type::i64());
              fb.set(i, 0);
              fb.set(sum, 0);
              fb.while_(i < 100, [&] {
                fb.set(i, i + 1);
                fb.if_(i % 2 == 0, [&] { fb.continue_(); });
                fb.if_(i > 10, [&] { fb.break_(); });
                fb.set(sum, sum + i);  // odd values 1..9
              });
              fb.ret(sum);  // 1+3+5+7+9 = 25
            }),
            25);
}

TEST(Compile, NestedLoops) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto i = fb.local("i", Type::i64());
              auto j = fb.local("j", Type::i64());
              auto c = fb.local("c", Type::i64());
              fb.set(c, 0);
              fb.set(i, 0);
              fb.while_(i < 7, [&] {
                fb.set(j, 0);
                fb.while_(j < 5, [&] {
                  fb.set(c, c + 1);
                  fb.set(j, j + 1);
                });
                fb.set(i, i + 1);
              });
              fb.ret(c);
            }),
            35);
}

TEST(Compile, CompareAsValue) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, 7);
              fb.ret((a > 3) + (a < 3) * 10 + (a == 7) * 100);
            }),
            101);
}

TEST(Compile, LogicalAndOr) {
  EXPECT_EQ(run_main_returning([](Module&, FunctionBuilder& fb) {
              auto a = fb.local("a", Type::i64());
              fb.set(a, 7);
              auto r = fb.local("r", Type::i64());
              fb.set(r, 0);
              fb.if_(land(a > 3, a < 10), [&] { fb.set(r, r + 1); });
              fb.if_(lor(a > 100, a == 7), [&] { fb.set(r, r + 2); });
              fb.if_(land(a > 100, a == 7), [&] { fb.set(r, r + 4); });
              fb.ret(r);
            }),
            3);
}

TEST(Compile, FunctionCallsAndRecursion) {
  Module m;
  Function* fact = m.add_function("fact");
  {
    FunctionBuilder fb(m, *fact);
    auto n = fb.param("n", Type::i64());
    fb.if_(n <= 1, [&] { fb.ret(Val(1)); });
    fb.ret(n * fb.call(fact, {n - 1}));
  }
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    fb.ret(fb.call(fact, {Val(10)}));
  }
  EXPECT_EQ(run_module(m).exit_code, 3628800);
}

TEST(Compile, NestedCallArguments) {
  Module m;
  Function* add3 = m.add_function("add3");
  {
    FunctionBuilder fb(m, *add3);
    auto a = fb.param("a", Type::i64());
    auto b = fb.param("b", Type::i64());
    auto c = fb.param("c", Type::i64());
    fb.ret(a + b + c);
  }
  Function* twice = m.add_function("twice");
  {
    FunctionBuilder fb(m, *twice);
    auto x = fb.param("x", Type::i64());
    fb.ret(x * 2);
  }
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    // Nested calls inside arguments exercise temp spilling around calls.
    fb.ret(fb.call(add3, {fb.call(twice, {Val(3)}), fb.call(twice, {Val(5)}),
                          fb.call(twice, {Val(7)})}) +
           fb.call(twice, {fb.call(twice, {Val(1)})}));
  }
  EXPECT_EQ(run_module(m).exit_code, 34);
}

TEST(Compile, SixParams) {
  Module m;
  Function* f = m.add_function("f");
  {
    FunctionBuilder fb(m, *f);
    Val p[6] = {fb.param("a", Type::i64()), fb.param("b", Type::i64()),
                fb.param("c", Type::i64()), fb.param("d", Type::i64()),
                fb.param("e", Type::i64()), fb.param("g", Type::i64())};
    fb.ret(p[0] + p[1] * 10 + p[2] * 100 + p[3] * 1000 + p[4] * 10000 + p[5] * 100000);
  }
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    fb.ret(fb.call(f, {Val(1), Val(2), Val(3), Val(4), Val(5), Val(6)}));
  }
  EXPECT_EQ(run_module(m).exit_code, 654321);
}

TEST(Compile, Globals) {
  Module m;
  m.add_global("counter", Type::i64(), 5);
  Function* bump = m.add_function("bump");
  {
    FunctionBuilder fb(m, *bump);
    fb.set(fb.global("counter"), fb.global("counter") + 1);
    fb.ret0();
  }
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto i = fb.local("i", Type::i64());
    fb.set(i, 0);
    fb.while_(i < 10, [&] {
      fb.call_stmt(bump, {});
      fb.set(i, i + 1);
    });
    fb.ret(fb.global("counter"));
  }
  EXPECT_EQ(run_module(m).exit_code, 15);
}

TEST(Compile, StructsAndPointerChase) {
  Module m;
  StructDef* node = m.add_struct("node");
  node->field("value", Type::i64()).field("next", Type::ptr(node));
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto head = fb.local("head", Type::ptr(node));
    auto cur = fb.local("cur", Type::ptr(node));
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(head, cast(Val(0), Type::ptr(node)));
    fb.set(i, 1);
    // Build list 1..10 (prepended), then sum it.
    fb.while_(i <= 10, [&] {
      fb.set(cur, cast(fb.call(mal, {Val(16)}), Type::ptr(node)));
      fb.set(cur["value"], i);
      fb.set(cur["next"], head);
      fb.set(head, cur);
      fb.set(i, i + 1);
    });
    fb.set(sum, 0);
    fb.set(cur, head);
    fb.while_(cur != 0, [&] {
      fb.set(sum, sum + cur["value"]);
      fb.set(cur, cur["next"]);
    });
    fb.ret(sum);
  }
  EXPECT_EQ(run_module(m).exit_code, 55);
}

TEST(Compile, PtrIndexOnOddSizedStruct) {
  Module m;
  StructDef* rec = m.add_struct("rec");
  rec->field("a", Type::i64()).field("b", Type::i64()).field("c", Type::i64());
  ASSERT_EQ(rec->size(), 24u);  // not a power of two: exercises MULX scaling
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto arr = fb.local("arr", Type::ptr(rec));
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(arr, cast(fb.call(mal, {Val(24 * 20)}), Type::ptr(rec)));
    fb.set(i, 0);
    fb.while_(i < 20, [&] {
      fb.set((arr + i)["b"], i * 3);
      fb.set(i, i + 1);
    });
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < 20, [&] {
      fb.set(sum, sum + (arr + i)["b"]);
      fb.set(i, i + 1);
    });
    fb.ret(sum);  // 3 * (0+..+19) = 570
  }
  EXPECT_EQ(run_module(m).exit_code, 570);
}

TEST(Compile, ScalarArraysAndDeref) {
  Module m;
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto arr = fb.local("arr", Type::ptr_i64());
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(arr, cast(fb.call(mal, {Val(8 * 50)}), Type::ptr_i64()));
    fb.set(i, 0);
    fb.while_(i < 50, [&] {
      fb.set(arr.idx(i), i * i);
      fb.set(i, i + 1);
    });
    fb.set(sum, arr.deref());  // arr[0] == 0
    fb.set(i, 0);
    fb.while_(i < 50, [&] {
      fb.set(sum, sum + arr.idx(i));
      fb.set(i, i + 1);
    });
    fb.ret(sum);  // sum of squares 0..49 = 40425
  }
  EXPECT_EQ(run_module(m).exit_code, 40425);
}

TEST(Compile, ByteArrays) {
  Module m;
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto s = fb.local("s", Type::ptr_u8());
    fb.set(s, cast(fb.call(mal, {Val(16)}), Type::ptr_u8()));
    fb.set(s.idx(Val(0)), 300);  // truncated to byte: 44
    fb.ret(s.idx(Val(0)));       // zero-extended back
  }
  EXPECT_EQ(run_module(m).exit_code, 44);
}

TEST(Compile, ManyLocalsSpillToFrame) {
  Module m;
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    std::vector<Val> locals;
    for (int i = 0; i < 20; ++i) {  // > 14 register homes
      locals.push_back(fb.local("v" + std::to_string(i), Type::i64()));
      fb.set(locals.back(), i + 1);
    }
    Val sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    for (int i = 0; i < 20; ++i) fb.set(sum, sum + locals[static_cast<size_t>(i)]);
    fb.ret(sum);  // 210
  }
  EXPECT_EQ(run_module(m).exit_code, 210);
}

TEST(Compile, OutputStatements) {
  Module m;
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    fb.put_int(Val(123));
    fb.put_char(Val('\n'));
    fb.put_int(Val(-9));
    fb.ret(Val(0));
  }
  EXPECT_EQ(run_module(m).output, "123\n-9");
}

TEST(Compile, PrefetchIsSemanticNoop) {
  Module m;
  Function* mal = add_runtime(m);
  Function* main = m.add_function("main");
  {
    FunctionBuilder fb(m, *main);
    auto arr = fb.local("arr", Type::ptr_i64());
    fb.set(arr, cast(fb.call(mal, {Val(64)}), Type::ptr_i64()));
    fb.set(arr.idx(Val(2)), 77);
    fb.prefetch(arr.idx(Val(3)));
    fb.ret(arr.idx(Val(2)));
  }
  EXPECT_EQ(run_module(m).exit_code, 77);
}

// ---------------------------------------------------------------------------
// Struct layout engine

TEST(Layout, DeclarationOrderNaturalAlignment) {
  StructDef s("s");
  s.field("a", Type::i64()).field("b", Type::byte()).field("c", Type::i64());
  EXPECT_EQ(s.offset_of("a"), 0u);
  EXPECT_EQ(s.offset_of("b"), 8u);
  EXPECT_EQ(s.offset_of("c"), 16u);  // padded to 8
  EXPECT_EQ(s.size(), 24u);
}

TEST(Layout, ReorderAndPad) {
  StructDef s("s");
  s.field("a", Type::i64()).field("b", Type::i64()).field("c", Type::i64());
  s.set_layout_order({"c", "a", "b"});
  EXPECT_EQ(s.offset_of("c"), 0u);
  EXPECT_EQ(s.offset_of("a"), 8u);
  EXPECT_EQ(s.offset_of("b"), 16u);
  s.set_pad_to(64);
  EXPECT_EQ(s.size(), 64u);
}

TEST(Layout, ReorderValidation) {
  StructDef s("s");
  s.field("a", Type::i64()).field("b", Type::i64());
  EXPECT_THROW(s.set_layout_order({"a"}), Error);
  EXPECT_THROW(s.set_layout_order({"a", "a"}), Error);
  EXPECT_THROW(s.set_layout_order({"a", "zz"}), Error);
}

TEST(Layout, ReorderPreservesSemantics) {
  for (bool reorder : {false, true}) {
    Module m;
    StructDef* rec = m.add_struct("rec");
    rec->field("x", Type::i64()).field("y", Type::i64()).field("z", Type::i64());
    if (reorder) {
      rec->set_layout_order({"z", "y", "x"});
      rec->set_pad_to(32);
    }
    Function* mal = add_runtime(m);
    Function* main = m.add_function("main");
    FunctionBuilder fb(m, *main);
    auto r = fb.local("r", Type::ptr(rec));
    fb.set(r, cast(fb.call(mal, {Val(static_cast<i64>(rec->size()))}), Type::ptr(rec)));
    fb.set(r["x"], 7);
    fb.set(r["y"], 8);
    fb.set(r["z"], 9);
    fb.ret(r["x"] * 100 + r["y"] * 10 + r["z"]);
    EXPECT_EQ(run_module(m).exit_code, 789) << "reorder=" << reorder;
  }
}

// ---------------------------------------------------------------------------
// hwcprof codegen contract

Module& leak(Module* m) { return *m; }  // keep StructDef pointers alive in helpers

std::unique_ptr<Module> make_memory_heavy_module() {
  auto m = std::make_unique<Module>();
  StructDef* node = m->add_struct("node");
  node->field("value", Type::i64()).field("next", Type::ptr(node));
  Function* mal = add_runtime(*m);
  Function* main = m->add_function("main");
  FunctionBuilder fb(*m, *main);
  auto head = fb.local("head", Type::ptr(node));
  auto cur = fb.local("cur", Type::ptr(node));
  auto i = fb.local("i", Type::i64());
  auto sum = fb.local("sum", Type::i64());
  fb.set(head, cast(Val(0), Type::ptr(node)));
  fb.set(i, 0);
  fb.while_(i < 200, [&] {
    fb.set(cur, cast(fb.call(mal, {Val(16)}), Type::ptr(node)));
    fb.set(cur["value"], i);
    fb.set(cur["next"], head);
    fb.set(head, cur);
    fb.set(i, i + 1);
  });
  fb.set(sum, 0);
  fb.set(cur, head);
  fb.while_(cur != 0, [&] {
    fb.set(sum, sum + cur["value"]);
    fb.set(cur, cur["next"]);
  });
  fb.trace(sum);
  fb.ret(sum & 0xFF);
  return m;
}

TEST(Hwcprof, NoMemoryOpsInDelaySlots) {
  auto m = make_memory_heavy_module();
  const sym::Image img = compile(leak(m.get()), CompileOptions{});
  for (size_t i = 0; i + 1 < img.text_words.size(); ++i) {
    const isa::Instr ins = isa::decode(img.text_words[i]);
    if (isa::op_info(ins.op).delayed) {
      const isa::Instr slot = isa::decode(img.text_words[i + 1]);
      EXPECT_FALSE(isa::is_mem_op(slot.op) || isa::op_info(slot.op).is_prefetch)
          << "memory op in delay slot at word " << i + 1;
    }
  }
}

TEST(Hwcprof, EveryMemoryOpHasDataDescriptor) {
  auto m = make_memory_heavy_module();
  const sym::Image img = compile(leak(m.get()), CompileOptions{});
  const sym::SymbolTable& st = img.symtab;
  EXPECT_TRUE(st.hwcprof());
  for (size_t i = 0; i < img.text_words.size(); ++i) {
    const isa::Instr ins = isa::decode(img.text_words[i]);
    const u64 pc = img.text_base + 4 * i;
    if (isa::is_mem_op(ins.op) && st.find_function(pc) != nullptr) {
      EXPECT_NE(st.memref_for(pc), nullptr)
          << "memory op without descriptor at " << std::hex << pc;
    }
  }
}

TEST(Hwcprof, PaddingKeepsDistanceBeforeJoins) {
  auto m = make_memory_heavy_module();
  CompileOptions opt;
  opt.pad_nops = 2;
  const sym::Image img = compile(leak(m.get()), opt);
  const sym::SymbolTable& st = img.symtab;
  // At every branch-target PC, the two preceding instructions must not be
  // memory operations (the compiler inserted nops after the last mem op).
  for (u64 t : st.branch_targets()) {
    for (u64 back = 1; back <= 2; ++back) {
      const u64 pc = t - 4 * back;
      if (pc < img.text_base) continue;
      const isa::Instr ins = isa::decode(img.text_words[(pc - img.text_base) / 4]);
      // Delayed transfers may precede a target (fall-through joins after
      // branches are themselves targets); only memory ops are forbidden.
      EXPECT_FALSE(isa::is_mem_op(ins.op))
          << "memory op within pad distance of branch target " << std::hex << t;
    }
  }
}

TEST(Hwcprof, DisabledOmitsDescriptorsAndKeepsSemantics) {
  auto m1 = make_memory_heavy_module();
  auto m2 = make_memory_heavy_module();
  CompileOptions with;
  CompileOptions without;
  without.hwcprof = false;
  const RunOutcome a = run_module(leak(m1.get()), with);
  const RunOutcome b = run_module(leak(m2.get()), without);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.trace, b.trace);
  // hwcprof adds padding nops: slightly more instructions (paper §2.1: ~1.3%).
  EXPECT_GT(a.instructions, b.instructions);
  EXPECT_LT(static_cast<double>(a.instructions),
            static_cast<double>(b.instructions) * 1.25);
  EXPECT_FALSE(compile(leak(m2.get()), without).symtab.hwcprof());
}

TEST(Hwcprof, StabsHasNoBranchTargets) {
  auto m = make_memory_heavy_module();
  CompileOptions opt;
  opt.dwarf = false;
  const sym::Image img = compile(leak(m.get()), opt);
  EXPECT_FALSE(img.symtab.has_branch_targets());
  EXPECT_TRUE(img.symtab.branch_targets().empty());
  EXPECT_FALSE(img.symtab.hwcprof());  // memory profiling needs DWARF
}

TEST(SymbolInfo, FunctionsCoverTextAndLinesAreSane) {
  auto m = make_memory_heavy_module();
  const sym::Image img = compile(leak(m.get()), CompileOptions{});
  const sym::SymbolTable& st = img.symtab;
  // main and malloc exist.
  bool has_main = false, has_malloc = false;
  for (const auto& f : st.functions()) {
    has_main |= f.name == "main";
    has_malloc |= f.name == "malloc";
    EXPECT_LT(f.lo, f.hi);
  }
  EXPECT_TRUE(has_main);
  EXPECT_TRUE(has_malloc);
  // Every line found on an instruction has source text.
  for (size_t i = 0; i < img.text_words.size(); ++i) {
    const u64 pc = img.text_base + 4 * i;
    if (auto line = st.line_for(pc)) {
      EXPECT_NE(st.source_text(*line), nullptr) << "no source text for line " << *line;
    }
  }
}

TEST(SourceText, GeneratedFromAst) {
  Module m;
  StructDef* node = m.add_struct("node");
  node->field("potential", Type::i64("cost_t"))
      .field("pred", Type::ptr(node))
      .field("basic_arc", Type::ptr(node));
  Function* f = m.add_function("refresh");
  FunctionBuilder fb(m, *f);
  auto n = fb.param("node", Type::ptr(node));
  fb.set(n["potential"], n["basic_arc"]["potential"] + n["pred"]["potential"]);
  fb.ret0();
  bool found = false;
  for (const auto& [line, text] : m.source_lines()) {
    if (text == "node->potential = node->basic_arc->potential + node->pred->potential;") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, TypeErrorsRejected) {
  Module m;
  StructDef* node = m.add_struct("node");
  node->field("v", Type::i64());
  StructDef* other = m.add_struct("other");
  other->field("w", Type::i64());
  Function* f = m.add_function("f");
  FunctionBuilder fb(m, *f);
  auto p = fb.local("p", Type::ptr(node));
  auto q = fb.local("q", Type::ptr(other));
  auto x = fb.local("x", Type::i64());
  EXPECT_THROW(p == q, Error);        // incompatible pointers
  EXPECT_THROW(p * x, Error);         // pointer multiplication
  EXPECT_THROW(x.field("v"), Error);  // member access on non-pointer
  EXPECT_THROW(fb.set(x, p), Error);  // pointer into integer
  EXPECT_THROW(p.idx(x), Error);      // idx on struct pointer
}

}  // namespace
}  // namespace dsprof::scc
