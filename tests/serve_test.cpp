// The serve subsystem (DESIGN.md §3.3): wire format hardening, transports,
// the dsprofd Server/Client pair, the overload policies with exact drop
// accounting, and — centrally — the online-vs-offline bit-identity
// invariant: a snapshot of a streamed session renders byte-for-byte the
// report an offline Analysis over the same events produces, for ANY
// batch split (proved here property-style over fuzz-generated streams and
// random splits; tests/integration_test.cpp proves it on the paper's MCF
// workloads).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>

#include "analyze/reports.hpp"
#include "dsl_fixtures.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace dsprof::serve {
namespace {

using experiment::EventStore;
using experiment::Experiment;

// --- shared fixtures --------------------------------------------------------

machine::CpuConfig small_machine() {
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {4 * 1024, 4, 32, false};
  cfg.hierarchy.ecache = {32 * 1024, 2, 512, true};
  cfg.hierarchy.dtlb = {8, 2, 8 * 1024};
  return cfg;
}

/// One collected chase experiment shared by every test in this file.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mod = testfix::make_chase_module(1000, 4, 4096);
    image_ = new sym::Image(scc::compile(*mod));
    ex_ = new Experiment(
        testfix::quick_collect(*image_, "+ecstall,1009,+ecrm,97", "hi", small_machine()));
  }
  static void TearDownTestSuite() {
    delete ex_;
    delete image_;
  }
  static sym::Image* image_;
  static Experiment* ex_;
};

sym::Image* ServeTest::image_ = nullptr;
Experiment* ServeTest::ex_ = nullptr;

std::string offline_report(const Experiment& ex) {
  analyze::Analysis a(ex);
  return analyze::render_json_report(a);
}

/// Stream `ex` into a fresh in-process server with the given batch size and
/// return the snapshot JSON (asserting clean accounting on the way).
std::string stream_snapshot(const Experiment& ex, size_t batch_events,
                            ServerOptions sopt = {}) {
  Server server(sopt);
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  Client client(std::move(client_end));

  Accounting acct;
  Status st = stream_experiment(client, ex, batch_events, acct);
  EXPECT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(acct.events_in, ex.events.size());
  EXPECT_EQ(acct.events_in, acct.events_reduced + acct.events_dropped);

  std::string json;
  st = client.snapshot(acct, json);
  EXPECT_TRUE(st.ok()) << st.to_string();
  st = client.close(acct);
  EXPECT_TRUE(st.ok()) << st.to_string();
  server.stop();
  return json;
}

// --- wire format ------------------------------------------------------------

TEST(Wire, FrameRoundtripByteAtATime) {
  const std::vector<u8> payload = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<u8> bytes = encode_frame(FrameType::EventBatch, payload, /*flags=*/7);
  FrameReader r;
  Frame f;
  // Worst-case chunking: one byte per feed. The frame must assemble
  // exactly once, intact.
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(r.feed(&bytes[i], 1).ok());
    if (i + 1 < bytes.size()) {
      ASSERT_FALSE(r.next_frame(f));
    }
  }
  ASSERT_TRUE(r.next_frame(f));
  EXPECT_EQ(f.type, FrameType::EventBatch);
  EXPECT_EQ(f.flags, 7);
  EXPECT_EQ(f.payload, payload);
  EXPECT_FALSE(r.mid_frame());
  EXPECT_FALSE(r.next_frame(f));
}

TEST(Wire, MultipleFramesInOneFeed) {
  std::vector<u8> bytes = encode_frame(FrameType::Flush, {});
  const std::vector<u8> second = encode_frame(FrameType::Close, {0xAB});
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameReader r;
  ASSERT_TRUE(r.feed(bytes.data(), bytes.size()).ok());
  Frame f;
  ASSERT_TRUE(r.next_frame(f));
  EXPECT_EQ(f.type, FrameType::Flush);
  ASSERT_TRUE(r.next_frame(f));
  EXPECT_EQ(f.type, FrameType::Close);
  EXPECT_EQ(f.payload.size(), 1u);
}

TEST(Wire, BadMagicPoisonsTheStream) {
  std::vector<u8> bytes = encode_frame(FrameType::Flush, {});
  bytes[0] ^= 0xFF;
  FrameReader r;
  const Status st = r.feed(bytes.data(), bytes.size());
  EXPECT_EQ(st.code, StatusCode::BadMagic);
  // Poisoned: even valid bytes are rejected afterwards (no resync).
  const std::vector<u8> good = encode_frame(FrameType::Flush, {});
  EXPECT_EQ(r.feed(good.data(), good.size()).code, StatusCode::Malformed);
}

TEST(Wire, BadVersionRejected) {
  std::vector<u8> bytes = encode_frame(FrameType::Flush, {});
  bytes[4] = kWireVersion + 1;
  FrameReader r;
  EXPECT_EQ(r.feed(bytes.data(), bytes.size()).code, StatusCode::BadVersion);
}

TEST(Wire, OversizedLengthPrefixRejected) {
  std::vector<u8> bytes = encode_frame(FrameType::EventBatch, {1, 2, 3});
  // Forge a hostile length prefix far beyond the cap: the reader must
  // refuse from the header alone, not try to buffer 4 GB.
  const u32 hostile = 0xFFFFFFFF;
  std::memcpy(bytes.data() + 8, &hostile, 4);
  FrameReader r;
  EXPECT_EQ(r.feed(bytes.data(), bytes.size()).code, StatusCode::FrameTooLarge);
}

TEST(Wire, TruncatedFrameIsMidFrameNotError) {
  const std::vector<u8> bytes = encode_frame(FrameType::EventBatch, {1, 2, 3, 4});
  FrameReader r;
  ASSERT_TRUE(r.feed(bytes.data(), bytes.size() - 2).ok());
  Frame f;
  EXPECT_FALSE(r.next_frame(f));
  // This is the disconnect-mid-batch shape: bytes buffered, no frame —
  // the session discards them on finalize.
  EXPECT_TRUE(r.mid_frame());
}

TEST(Wire, TruncatedPayloadDecodesToMalformed) {
  EventStore ev;
  const u64 stack[2] = {0x1000, 0x2000};
  ev.append(0, machine::HwEvent::EC_stall_cycles, 97, 0x4000, true, 0x3ffc, true, 0x8000,
            stack, 2, 1);
  std::vector<u8> payload = encode_event_batch(ev);
  payload.resize(payload.size() / 2);  // truncate mid-column
  EventStore out;
  EXPECT_EQ(decode_event_batch(std::move(payload), out).code, StatusCode::Malformed);

  HelloPayload h;
  EXPECT_EQ(decode_hello({1, 2, 3}, h).code, StatusCode::Malformed);
  Accounting acct;
  EXPECT_EQ(decode_flush_ack({9}, acct).code, StatusCode::Malformed);
  std::vector<machine::AllocRecord> allocs;
  // Hostile count with a tiny payload must fail cleanly, not allocate.
  std::vector<u8> bad_allocs(8, 0xFF);
  EXPECT_EQ(decode_allocs(bad_allocs, allocs).code, StatusCode::Malformed);
}

TEST(Wire, TrailingGarbageRejected) {
  std::vector<u8> payload = encode_hello_ack(42);
  payload.push_back(0xEE);
  u64 id = 0;
  EXPECT_EQ(decode_hello_ack(payload, id).code, StatusCode::Malformed);
}

TEST_F(ServeTest, PayloadCodecsRoundtrip) {
  HelloPayload h;
  h.client_name = "codec-test";
  h.image = *image_;
  h.counters = ex_->counters;
  h.clock_interval = ex_->clock_interval;
  h.clock_hz = ex_->clock_hz;
  h.total_cycles = 123456789;
  HelloPayload out;
  ASSERT_TRUE(decode_hello(encode_hello(h), out).ok());
  EXPECT_EQ(out.client_name, h.client_name);
  ASSERT_EQ(out.counters.size(), h.counters.size());
  for (size_t i = 0; i < h.counters.size(); ++i) {
    EXPECT_EQ(out.counters[i].event, h.counters[i].event);
    EXPECT_EQ(out.counters[i].interval, h.counters[i].interval);
    EXPECT_EQ(out.counters[i].backtrack, h.counters[i].backtrack);
    EXPECT_EQ(out.counters[i].pic, h.counters[i].pic);
  }
  EXPECT_EQ(out.total_cycles, h.total_cycles);
  EXPECT_EQ(out.image.symtab.functions().size(), image_->symtab.functions().size());

  EventStore batch;
  batch.append_range(ex_->events, 0, std::min<size_t>(ex_->events.size(), 100));
  EventStore decoded;
  ASSERT_TRUE(decode_event_batch(encode_event_batch(batch), decoded).ok());
  ASSERT_EQ(decoded.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(decoded[i].delivered_pc, batch[i].delivered_pc);
    EXPECT_TRUE(decoded.callstack(i) == batch.callstack(i));
  }

  const std::vector<machine::AllocRecord> allocs = {{0x1000, 64, 0x8000},
                                                    {0x2000, 128, 0x8010}};
  std::vector<machine::AllocRecord> allocs_out;
  ASSERT_TRUE(decode_allocs(encode_allocs(allocs), allocs_out).ok());
  EXPECT_EQ(allocs_out, allocs);

  const Accounting acct{100, 90, 10};
  Accounting a2;
  std::string json;
  ASSERT_TRUE(decode_snapshot(encode_snapshot(acct, "{\"x\":1}"), a2, json).ok());
  EXPECT_EQ(a2.events_in, 100u);
  EXPECT_EQ(a2.events_dropped, 10u);
  EXPECT_EQ(json, "{\"x\":1}");

  const Status err = Status::make(StatusCode::Overloaded, "queue full");
  Status err_out;
  ASSERT_TRUE(decode_error(encode_error(err), err_out).ok());
  EXPECT_EQ(err_out.code, StatusCode::Overloaded);
  EXPECT_EQ(err_out.message, "queue full");
}

// --- transports -------------------------------------------------------------

TEST(PipeTransport, RoundtripAndTimeout) {
  auto [a, b] = make_pipe_pair(/*capacity=*/64);
  const u8 msg[5] = {'h', 'e', 'l', 'l', 'o'};
  ASSERT_TRUE(a->send(msg, 5).ok());
  u8 buf[16];
  size_t got = 0;
  ASSERT_TRUE(b->recv_some(buf, sizeof buf, got, 1000).ok());
  EXPECT_EQ(got, 5u);
  EXPECT_EQ(std::memcmp(buf, msg, 5), 0);
  // Nothing more to read: a short timeout must report Timeout, not block.
  EXPECT_EQ(b->recv_some(buf, sizeof buf, got, 10).code, StatusCode::Timeout);
}

TEST(PipeTransport, BackpressureBlocksSender) {
  auto [a, b] = make_pipe_pair(/*capacity=*/16);
  std::atomic<bool> sent{false};
  std::thread t([&] {
    std::vector<u8> big(64, 0xAA);
    ASSERT_TRUE(a->send(big.data(), big.size()).ok());
    sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sent.load());  // blocked on the 16-byte capacity
  u8 buf[64];
  size_t total = 0, got = 0;
  while (total < 64) {
    ASSERT_TRUE(b->recv_some(buf, sizeof buf, got, 1000).ok());
    total += got;
  }
  t.join();
  EXPECT_TRUE(sent.load());
}

TEST(PipeTransport, ShutdownDisconnectsBothEnds) {
  auto [a, b] = make_pipe_pair();
  a->shutdown();
  u8 buf[8];
  size_t got = 0;
  EXPECT_EQ(b->recv_some(buf, sizeof buf, got, 1000).code, StatusCode::Disconnected);
  EXPECT_EQ(a->send(buf, 1).code, StatusCode::Disconnected);
}

TEST_F(ServeTest, UdsTransportEndToEnd) {
  const std::string path = ::testing::TempDir() + "serve_test_uds.sock";
  UdsListener listener(path);
  Server server;
  std::thread accepter([&] {
    Status st;
    auto t = listener.accept(st, 5000);
    ASSERT_TRUE(t != nullptr) << st.to_string();
    server.add_session(std::move(t));
  });
  Status st;
  auto ct = uds_connect(path, st);
  ASSERT_TRUE(ct != nullptr) << st.to_string();
  accepter.join();

  Client client(std::move(ct));
  Accounting acct;
  st = stream_experiment(client, *ex_, 512, acct);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(acct.events_in, ex_->events.size());
  std::string json;
  ASSERT_TRUE(client.snapshot(acct, json).ok());
  EXPECT_EQ(json, offline_report(*ex_));
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

// --- the bit-identity invariant ---------------------------------------------

TEST_F(ServeTest, SnapshotMatchesOfflineAnalysis) {
  const std::string offline = offline_report(*ex_);
  EXPECT_EQ(stream_snapshot(*ex_, 512), offline);
  // The split must not matter: one giant batch, tiny batches, odd sizes.
  EXPECT_EQ(stream_snapshot(*ex_, ex_->events.size()), offline);
  EXPECT_EQ(stream_snapshot(*ex_, 7), offline);
}

TEST_F(ServeTest, SnapshotBitIdentityUnderRandomSplits) {
  const std::string offline = offline_report(*ex_);
  std::mt19937_64 rng(20030815);
  for (int round = 0; round < 3; ++round) {
    // Random batch size per round; stream_experiment slices uniformly, so
    // vary the size across rounds to cover ragged final batches.
    std::uniform_int_distribution<size_t> d(1, ex_->events.size());
    EXPECT_EQ(stream_snapshot(*ex_, d(rng)), offline) << "round " << round;
  }
}

/// Property test: fuzz-generated event streams (random PCs, EAs, weights,
/// callstacks — valid and wild values alike) streamed under random batch
/// splits render identically to the offline analyzer.
TEST_F(ServeTest, FuzzStreamsRenderIdenticallyOnlineAndOffline) {
  std::mt19937_64 rng(0xD5B0F);
  const u64 text_end = image_->text_base + image_->text_size();
  for (int round = 0; round < 4; ++round) {
    Experiment fz;
    fz.image = *image_;
    fz.counters = ex_->counters;
    fz.clock_interval = ex_->clock_interval;
    std::uniform_int_distribution<u64> pc_d(image_->text_base / 4, (text_end + 1024) / 4);
    std::uniform_int_distribution<u64> ea_d(0, 1u << 22);
    std::uniform_int_distribution<int> pct(0, 99);
    const size_t n = 500 + static_cast<size_t>(rng() % 1500);
    for (size_t i = 0; i < n; ++i) {
      const bool clock_sample = pct(rng) < 20;
      const u8 pic = clock_sample ? machine::kClockPic : static_cast<u8>(rng() % 2);
      const auto event = clock_sample
                             ? machine::HwEvent::Cycle_cnt
                             : (pic == 0 ? machine::HwEvent::EC_stall_cycles
                                         : machine::HwEvent::EC_rd_miss);
      const u64 pc = pc_d(rng) * 4;
      const bool has_candidate = !clock_sample && pct(rng) < 70;
      const bool has_ea = has_candidate && pct(rng) < 80;
      u64 stack[4];
      const size_t depth = rng() % 4;
      for (size_t dpth = 0; dpth < depth; ++dpth) stack[dpth] = pc_d(rng) * 4;
      fz.events.append(pic, event, clock_sample ? ex_->clock_interval : 97, pc,
                       has_candidate, pc - 4 * (rng() % 8), has_ea, ea_d(rng), stack, depth,
                       i);
    }
    const std::string offline = offline_report(fz);
    const size_t batch = 1 + static_cast<size_t>(rng() % n);
    EXPECT_EQ(stream_snapshot(fz, batch), offline) << "round " << round;
  }
}

TEST_F(ServeTest, TwoConcurrentSessionsStayIsolated) {
  Server server;
  auto [c1, s1] = make_pipe_pair();
  auto [c2, s2] = make_pipe_pair();
  server.add_session(std::move(s1));
  server.add_session(std::move(s2));
  Client cl1(std::move(c1)), cl2(std::move(c2));

  // Session 2 gets only a prefix; both must render their own events only.
  Experiment half;
  half.image = ex_->image;
  half.counters = ex_->counters;
  half.clock_interval = ex_->clock_interval;
  half.events.append_range(ex_->events, 0, ex_->events.size() / 2);

  std::thread t1([&] {
    Accounting a;
    ASSERT_TRUE(stream_experiment(cl1, *ex_, 256, a).ok());
  });
  std::thread t2([&] {
    Accounting a;
    ASSERT_TRUE(stream_experiment(cl2, half, 101, a).ok());
  });
  t1.join();
  t2.join();

  Accounting a;
  std::string j1, j2;
  ASSERT_TRUE(cl1.snapshot(a, j1).ok());
  ASSERT_TRUE(cl2.snapshot(a, j2).ok());
  EXPECT_EQ(j1, offline_report(*ex_));
  EXPECT_EQ(j2, offline_report(half));
  ASSERT_TRUE(cl1.close(a).ok());
  ASSERT_TRUE(cl2.close(a).ok());
  server.stop();
}

// --- overload, backpressure, robustness -------------------------------------

TEST_F(ServeTest, DropOldestAccountsEveryEvent) {
  // Stall the reducer until released so the tiny queue must overflow.
  std::atomic<bool> release{false};
  std::atomic<int> folds{0};
  ServerOptions sopt;
  sopt.max_queued_batches = 2;
  sopt.before_reduce = [&](u64) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    folds.fetch_add(1);
  };
  Server server(sopt);
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  ClientOptions lenient;
  lenient.max_retries = 50;  // the stalled reducer may need a few timeouts
  Client client(std::move(client_end), lenient);

  u64 sid = 0;
  ASSERT_TRUE(client.hello(*ex_, sid).ok());
  const size_t kBatch = 10, kBatches = 10;
  ASSERT_GE(ex_->events.size(), kBatch * kBatches);
  for (size_t i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(client.send_batch(ex_->events, i * kBatch, (i + 1) * kBatch).ok());
  }
  // Only release once the reader has ingested every batch: the reducer is
  // stalled holding the first, so the tiny queue must have evicted the
  // excess by then. (Without this the release can race the reader and the
  // drained queue never overflows.)
  while (server.stats().batches_in < kBatches) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true);

  Accounting acct;
  ASSERT_TRUE(client.flush(acct).ok());
  // Exact accounting: every sent event is either folded or counted dropped.
  EXPECT_EQ(acct.events_in, kBatch * kBatches);
  EXPECT_EQ(acct.events_in, acct.events_reduced + acct.events_dropped);
  EXPECT_GT(acct.events_dropped, 0u) << "queue of 2 with 10 batches must drop";
  EXPECT_EQ(acct.events_dropped % kBatch, 0u) << "drops happen in whole batches";

  // The loss is surfaced in the report: a "(Dropped)" row with the count.
  std::string json;
  ASSERT_TRUE(client.snapshot(acct, json).ok());
  EXPECT_NE(json.find("\"(Dropped)\",\"events\":" + std::to_string(acct.events_dropped)),
            std::string::npos)
      << json;
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

TEST_F(ServeTest, BlockPolicyDropsNothing) {
  ServerOptions sopt;
  sopt.max_queued_batches = 1;
  sopt.overload = ServerOptions::Overload::Block;
  sopt.before_reduce = [](u64) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // slow reducer
  };
  Server server(sopt);
  auto [client_end, server_end] = make_pipe_pair(/*capacity=*/4096);
  server.add_session(std::move(server_end));
  Client client(std::move(client_end));

  u64 sid = 0;
  ASSERT_TRUE(client.hello(*ex_, sid).ok());
  const size_t kBatch = 10, kBatches = 10;
  ASSERT_GE(ex_->events.size(), kBatch * kBatches);
  for (size_t i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(client.send_batch(ex_->events, i * kBatch, (i + 1) * kBatch).ok());
  }
  Accounting acct;
  ASSERT_TRUE(client.flush(acct).ok());
  EXPECT_EQ(acct.events_in, kBatch * kBatches);
  EXPECT_EQ(acct.events_reduced, kBatch * kBatches);
  EXPECT_EQ(acct.events_dropped, 0u);
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

TEST_F(ServeTest, DisconnectMidBatchDiscardsPartialFrameOnly) {
  Server server;
  auto [client_end, server_end] = make_pipe_pair();
  const u64 id = server.add_session(std::move(server_end));

  // Speak the protocol by hand so we can cut the connection mid-frame.
  FrameReader replies;
  const auto send_raw = [&](const std::vector<u8>& b) {
    ASSERT_TRUE(client_end->send(b.data(), b.size()).ok());
  };
  HelloPayload h;
  h.client_name = "rude-client";
  h.image = *image_;
  h.counters = ex_->counters;
  send_raw(encode_frame(FrameType::Hello, encode_hello(h)));

  // Wait for the HelloAck: shutting down before the server replies would
  // fail its HelloAck send and poison the session before the batch lands.
  {
    std::vector<u8> buf(4096);
    Frame ack;
    bool got_ack = false;
    while (!got_ack) {
      size_t got = 0;
      ASSERT_TRUE(client_end->recv_some(buf.data(), buf.size(), got, 2000).ok());
      ASSERT_TRUE(replies.feed(buf.data(), got).ok());
      while (replies.next_frame(ack)) {
        ASSERT_EQ(ack.type, FrameType::HelloAck);
        got_ack = true;
      }
    }
  }

  ASSERT_GE(ex_->events.size(), 100u);
  EventStore complete;
  complete.append_range(ex_->events, 0, 50);
  send_raw(encode_frame(FrameType::EventBatch, encode_event_batch(complete)));

  // Half an EventBatch frame, then vanish.
  EventStore partial;
  partial.append_range(ex_->events, 50, 100);
  const std::vector<u8> frame = encode_frame(FrameType::EventBatch,
                                             encode_event_batch(partial));
  ASSERT_TRUE(client_end->send(frame.data(), frame.size() / 2).ok());
  client_end->shutdown();

  server.wait_session(id);  // session must finalize, not hang or crash
  const ServerStats st = server.stats();
  // The complete batch was folded; the torn frame's events appear nowhere.
  EXPECT_EQ(st.events_in, 50u);
  EXPECT_EQ(st.events_reduced, 50u);
  EXPECT_EQ(st.events_dropped, 0u);
  EXPECT_EQ(st.sessions_active, 0u);
  server.stop();
}

TEST_F(ServeTest, CorruptFrameKillsSessionNotServer) {
  Server server;
  auto [client_end, server_end] = make_pipe_pair();
  const u64 id = server.add_session(std::move(server_end));

  std::vector<u8> garbage(32, 0x5A);  // wrong magic
  ASSERT_TRUE(client_end->send(garbage.data(), garbage.size()).ok());

  // The server answers with an Error frame naming the failure, then closes.
  FrameReader r;
  std::vector<u8> buf(4096);
  Frame f;
  bool got_error = false;
  for (int i = 0; i < 50 && !got_error; ++i) {
    size_t got = 0;
    const Status st = client_end->recv_some(buf.data(), buf.size(), got, 1000);
    if (!st.ok()) break;
    ASSERT_TRUE(r.feed(buf.data(), got).ok());
    while (r.next_frame(f)) {
      if (f.type == FrameType::Error) {
        Status carried;
        ASSERT_TRUE(decode_error(f.payload, carried).ok());
        EXPECT_EQ(carried.code, StatusCode::BadMagic);
        got_error = true;
      }
    }
  }
  EXPECT_TRUE(got_error);
  server.wait_session(id);

  // The server survives and accepts a fresh, healthy session.
  auto [c2, s2] = make_pipe_pair();
  server.add_session(std::move(s2));
  Client client(std::move(c2));
  Accounting acct;
  ASSERT_TRUE(stream_experiment(client, *ex_, 512, acct).ok());
  EXPECT_EQ(acct.events_reduced, ex_->events.size());
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

TEST_F(ServeTest, ProtocolViolationsRefusedCleanly) {
  // Batch before handshake.
  {
    Server server;
    auto [client_end, server_end] = make_pipe_pair();
    server.add_session(std::move(server_end));
    EventStore batch;
    batch.append_range(ex_->events, 0, 10);
    const std::vector<u8> bytes =
        encode_frame(FrameType::EventBatch, encode_event_batch(batch));
    ASSERT_TRUE(client_end->send(bytes.data(), bytes.size()).ok());
    FrameReader r;
    std::vector<u8> buf(4096);
    size_t got = 0;
    ASSERT_TRUE(client_end->recv_some(buf.data(), buf.size(), got, 2000).ok());
    ASSERT_TRUE(r.feed(buf.data(), got).ok());
    Frame f;
    ASSERT_TRUE(r.next_frame(f));
    EXPECT_EQ(f.type, FrameType::Error);
    Status carried;
    ASSERT_TRUE(decode_error(f.payload, carried).ok());
    EXPECT_EQ(carried.code, StatusCode::Refused);
    server.stop();
  }
  // Duplicate Hello.
  {
    Server server;
    auto [client_end, server_end] = make_pipe_pair();
    server.add_session(std::move(server_end));
    Client client(std::move(client_end));
    u64 sid = 0;
    ASSERT_TRUE(client.hello(*ex_, sid).ok());
    const Status st = client.hello(*ex_, sid);
    EXPECT_EQ(st.code, StatusCode::Refused);
    server.stop();
  }
}

/// Transport wrapper that times out the first `misses` receives — exercising
/// the client's retry/backoff path without a slow server.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner, int misses)
      : inner_(std::move(inner)), misses_(misses) {}
  Status send(const u8* data, size_t n) override { return inner_->send(data, n); }
  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) override {
    if (misses_ > 0) {
      --misses_;
      got = 0;
      return Status::make(StatusCode::Timeout, "injected timeout");
    }
    return inner_->recv_some(buf, cap, got, timeout_ms);
  }
  void shutdown() override { inner_->shutdown(); }

 private:
  std::unique_ptr<Transport> inner_;
  int misses_;
};

TEST_F(ServeTest, ClientRetriesTimeoutsWithBackoff) {
  Server server;
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  ClientOptions copt;
  copt.max_retries = 3;
  copt.backoff_ms = 1;
  Client client(std::make_unique<FlakyTransport>(std::move(client_end), 2), copt);
  u64 sid = 0;
  const Status st = client.hello(*ex_, sid);
  EXPECT_TRUE(st.ok()) << st.to_string();  // 2 injected timeouts < 3 retries
  Accounting acct;
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

TEST_F(ServeTest, ClientGivesUpAfterMaxRetries) {
  // No server at all: every recv times out, and after max_retries the
  // client reports Timeout instead of spinning forever.
  auto [client_end, server_end] = make_pipe_pair();
  ClientOptions copt;
  copt.recv_timeout_ms = 5;
  copt.max_retries = 2;
  copt.backoff_ms = 1;
  Client client(std::move(client_end));
  Client flaky(std::make_unique<FlakyTransport>(std::move(server_end), 1000), copt);
  u64 sid = 0;
  EXPECT_EQ(flaky.hello(*ex_, sid).code, StatusCode::Timeout);
}

TEST_F(ServeTest, StatsFrameReportsCounters) {
  Server server;
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  Client client(std::move(client_end));
  Accounting acct;
  ASSERT_TRUE(stream_experiment(client, *ex_, 512, acct).ok());
  std::string json;
  ASSERT_TRUE(client.server_stats(json).ok());
  EXPECT_NE(json.find("\"sessions_total\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"events_in\":" + std::to_string(ex_->events.size())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"events_dropped\":0"), std::string::npos) << json;
  ASSERT_TRUE(client.close(acct).ok());

  const ServerStats st = server.stats();
  EXPECT_EQ(st.events_in, st.events_reduced + st.events_dropped);
  EXPECT_GT(st.reduce_calls, 0u);
  server.stop();
}

TEST_F(ServeTest, AllocationsFlowIntoInstanceView) {
  // The Alloc frame feeds Analysis's allocation context: after streaming,
  // a snapshot must carry the same data_objects and the server-side
  // Analysis sees the same allocation list the offline one does (covered
  // indirectly by bit-identity, asserted directly here via accounting).
  Server server;
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  Client client(std::move(client_end));
  u64 sid = 0;
  ASSERT_TRUE(client.hello(*ex_, sid).ok());
  ASSERT_TRUE(client.send_allocations(ex_->allocations).ok());
  ASSERT_TRUE(client.send_batch(ex_->events).ok());
  Accounting acct;
  std::string json;
  ASSERT_TRUE(client.snapshot(acct, json).ok());
  EXPECT_EQ(json, offline_report(*ex_));
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

// --- queue-free direct-fold ingest ------------------------------------------

TEST_F(ServeTest, DirectFoldSnapshotBitIdenticalToQueued) {
  // The queue-free fast path must not change a single output byte: the
  // same stream through direct and queued ingest renders the offline
  // report either way, across batch splits.
  const std::string offline = offline_report(*ex_);
  for (const size_t batch : {size_t{64}, size_t{1000}, ex_->events.size()}) {
    ServerOptions direct;
    direct.direct_fold = true;
    ServerOptions queued;
    queued.direct_fold = false;
    EXPECT_EQ(stream_snapshot(*ex_, batch, direct), offline) << "batch " << batch;
    EXPECT_EQ(stream_snapshot(*ex_, batch, queued), offline) << "batch " << batch;
  }
}

TEST_F(ServeTest, DirectFoldTakesTheFastPathAndQueuedNever) {
  const auto run = [&](bool direct_fold) {
    ServerOptions sopt;
    sopt.direct_fold = direct_fold;
    Server server(sopt);
    auto [client_end, server_end] = make_pipe_pair();
    server.add_session(std::move(server_end));
    Client client(std::move(client_end));
    Accounting acct;
    EXPECT_TRUE(stream_experiment(client, *ex_, 512, acct).ok());
    EXPECT_TRUE(client.close(acct).ok());
    const ServerStats st = server.stats();
    EXPECT_EQ(st.events_in, st.events_reduced + st.events_dropped);
    server.stop();
    return st;
  };
  // Direct mode: the first batch always finds the queue empty and the
  // reducer idle, so at least one fold runs inline in the reader.
  const ServerStats direct = run(true);
  EXPECT_GT(direct.direct_folds, 0u);
  EXPECT_EQ(direct.events_dropped, 0u);
  // Queued mode: the fast path is disabled outright.
  const ServerStats queued = run(false);
  EXPECT_EQ(queued.direct_folds, 0u);
  EXPECT_EQ(queued.events_in, direct.events_in);
  EXPECT_EQ(queued.events_reduced, direct.events_reduced);
}

TEST_F(ServeTest, BeforeReduceSeamForcesQueuedPath) {
  // Overload tests stall the reducer through before_reduce; the fast path
  // must not bypass the seam (or those tests would stop meaning anything).
  ServerOptions sopt;
  sopt.direct_fold = true;
  std::atomic<unsigned> seam_hits{0};
  sopt.before_reduce = [&](u64) { seam_hits.fetch_add(1); };
  Server server(sopt);
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  Client client(std::move(client_end));
  Accounting acct;
  ASSERT_TRUE(stream_experiment(client, *ex_, 512, acct).ok());
  ASSERT_TRUE(client.close(acct).ok());
  const ServerStats st = server.stats();
  EXPECT_EQ(st.direct_folds, 0u);
  EXPECT_EQ(seam_hits.load(), st.reduce_calls);
  server.stop();
}

// --- TCP transport + endpoint URIs ------------------------------------------

TEST(Endpoints, ParseGrammar) {
  Endpoint e;
  ASSERT_TRUE(parse_endpoint("unix:///tmp/x.sock", e).ok());
  EXPECT_EQ(e.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(e.path, "/tmp/x.sock");
  ASSERT_TRUE(parse_endpoint("/tmp/bare.sock", e).ok());  // the historic --socket form
  EXPECT_EQ(e.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(e.path, "/tmp/bare.sock");
  ASSERT_TRUE(parse_endpoint("tcp://127.0.0.1:8080", e).ok());
  EXPECT_EQ(e.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 8080);
  ASSERT_TRUE(parse_endpoint("tcp://0.0.0.0:0", e).ok());  // ephemeral-port request
  EXPECT_EQ(e.port, 0);

  EXPECT_EQ(parse_endpoint("", e).code, StatusCode::Refused);
  EXPECT_EQ(parse_endpoint("unix://", e).code, StatusCode::Refused);
  EXPECT_EQ(parse_endpoint("tcp://127.0.0.1", e).code, StatusCode::Refused);  // no port
  EXPECT_EQ(parse_endpoint("tcp://127.0.0.1:99999", e).code, StatusCode::Refused);
  EXPECT_EQ(parse_endpoint("tcp://127.0.0.1:12x", e).code, StatusCode::Refused);
  EXPECT_EQ(parse_endpoint("http://host:1", e).code, StatusCode::Refused);
}

TEST(Endpoints, MalformedUriFailsFastInRetry) {
  // A URI that cannot parse never becomes connectable — connect_with_retry
  // must give up immediately instead of burning the whole backoff budget.
  Status st;
  ConnectRetry retry;
  retry.attempts = 1000;
  retry.backoff_ms = 10'000;  // would hang for hours if (wrongly) retried
  EXPECT_EQ(connect_with_retry("http://nope:1", st, retry), nullptr);
  EXPECT_EQ(st.code, StatusCode::Refused);
}

TEST(Endpoints, RetryReachesAListenerThatStartsLate) {
  // The deployment race connect_with_retry exists for: the collector comes
  // up before the daemon. The first attempts fail (no socket yet), then the
  // listener appears and a later attempt lands.
  const std::string path = ::testing::TempDir() + "serve_test_late.sock";
  ::unlink(path.c_str());
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    UdsListener listener(path);
    Status st;
    auto t = listener.accept(st, 5000);
    ASSERT_TRUE(t != nullptr) << st.to_string();
  });
  Status st;
  ConnectRetry retry;
  retry.attempts = 50;
  retry.backoff_ms = 10;
  auto t = connect_with_retry("unix://" + path, st, retry);
  EXPECT_TRUE(t != nullptr) << st.to_string();
  late.join();
}

TEST_F(ServeTest, TcpTransportEndToEnd) {
  // Mirror of UdsTransportEndToEnd over TCP loopback with an ephemeral
  // port: the wire protocol must not see any difference between socket
  // flavors, down to the snapshot bytes.
  TcpListener listener("127.0.0.1", 0);
  EXPECT_GT(listener.port(), 0u);  // kernel-assigned, reported back
  EXPECT_EQ(listener.endpoint(), "tcp://127.0.0.1:" + std::to_string(listener.port()));
  Server server;
  std::thread accepter([&] {
    Status st;
    auto t = listener.accept(st, 5000);
    ASSERT_TRUE(t != nullptr) << st.to_string();
    server.add_session(std::move(t));
  });
  Status st;
  auto ct = connect_endpoint(listener.endpoint(), st, /*timeout_ms=*/5000);
  ASSERT_TRUE(ct != nullptr) << st.to_string();
  accepter.join();

  Client client(std::move(ct));
  Accounting acct;
  st = stream_experiment(client, *ex_, 512, acct);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(acct.events_in, ex_->events.size());
  std::string json;
  ASSERT_TRUE(client.snapshot(acct, json).ok());
  EXPECT_EQ(json, offline_report(*ex_));
  ASSERT_TRUE(client.close(acct).ok());
  server.stop();
}

// --- the merged fleet view --------------------------------------------------

/// Open a pipe session on `server` and stream `ex` in `batch`-event frames;
/// the returned client is left open (a live session) unless closed.
std::unique_ptr<Client> open_and_stream(Server& server, const Experiment& ex, size_t batch) {
  auto [client_end, server_end] = make_pipe_pair();
  server.add_session(std::move(server_end));
  auto client = std::make_unique<Client>(std::move(client_end));
  Accounting acct;
  const Status st = stream_experiment(*client, ex, batch, acct);
  EXPECT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(acct.events_in, ex.events.size());
  return client;
}

std::string offline_multi(const std::vector<const Experiment*>& exps) {
  analyze::Analysis a(exps);
  return analyze::render_json_report(a);
}

TEST_F(ServeTest, MergedSnapshotMatchesOfflineMultiDirForAnySplit) {
  // Sessions play the role of experiment dirs: the merged fleet view must
  // render the bytes `er_print dir1 dir2 dir3 -J` would, whatever the
  // per-session batch split, with completed and live sessions mixed.
  const Experiment ex2 = testfix::quick_collect(*image_, "+dcrm,101", "hi", small_machine());
  const Experiment ex3 = testfix::quick_collect(*image_, "+ecrm,211", "on", small_machine());
  const std::string offline = offline_multi({ex_, &ex2, &ex3});
  std::mt19937_64 rng(4096);
  for (int round = 0; round < 3; ++round) {
    Server server;
    std::uniform_int_distribution<size_t> d(1, ex_->events.size());
    auto c1 = open_and_stream(server, *ex_, d(rng));
    auto c2 = open_and_stream(server, ex2, d(rng));
    auto c3 = open_and_stream(server, ex3, d(rng));
    // Close the middle session: the merge must span finalized and live
    // sessions alike, in session-id (arrival) order.
    Accounting acct;
    ASSERT_TRUE(c2->close(acct).ok());
    server.wait_session(2);
    std::string json;
    ASSERT_TRUE(c1->merged_snapshot(acct, json).ok());
    EXPECT_EQ(json, offline) << "round " << round;
    EXPECT_EQ(acct.events_in, ex_->events.size() + ex2.events.size() + ex3.events.size());
    server.stop();
  }
}

TEST_F(ServeTest, MergedSnapshotNeedsNoHelloAndRefusesAnEmptyFleet) {
  Server server;
  {
    // A monitoring client on an empty fleet: Refused, carried on an Error
    // frame (which closes the monitoring session, by protocol).
    auto [m_end, s_end] = make_pipe_pair();
    server.add_session(std::move(s_end));
    Client monitor(std::move(m_end));
    Accounting acct;
    std::string json;
    EXPECT_EQ(monitor.merged_snapshot(acct, json).code, StatusCode::Refused);
  }
  // With one streamed session, a fresh monitoring client gets the fleet
  // view without ever sending a Hello of its own.
  auto c1 = open_and_stream(server, *ex_, 512);
  auto [m_end, s_end] = make_pipe_pair();
  server.add_session(std::move(s_end));
  Client monitor(std::move(m_end));
  Accounting acct;
  std::string json;
  ASSERT_TRUE(monitor.merged_snapshot(acct, json).ok());
  EXPECT_EQ(json, offline_report(*ex_));
  EXPECT_EQ(acct.events_in, ex_->events.size());
  server.stop();
}

// --- retention + the rolling stats window -----------------------------------

TEST_F(ServeTest, RetentionEvictsTheOldestCompletedSessions) {
  ServerOptions sopt;
  sopt.retain_sessions = 1;
  Server server(sopt);
  const Experiment ex2 = testfix::quick_collect(*image_, "+dcrm,101", "hi", small_machine());
  for (const Experiment* ex : {const_cast<const Experiment*>(ex_), &ex2}) {
    auto c = open_and_stream(server, *ex, 512);
    Accounting acct;
    ASSERT_TRUE(c->close(acct).ok());
  }
  server.wait_all();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.sessions_total, 2u);
  EXPECT_EQ(st.sessions_retained, 1u);
  EXPECT_EQ(st.sessions_evicted, 1u);
  // Eviction frees aggregates, never accounting: cumulative totals intact.
  EXPECT_EQ(st.events_in, ex_->events.size() + ex2.events.size());
  EXPECT_EQ(st.events_in, st.events_reduced + st.events_dropped);
  // The merged view now covers only the retained (newest) session.
  auto [m_end, s_end] = make_pipe_pair();
  server.add_session(std::move(s_end));
  Client monitor(std::move(m_end));
  Accounting acct;
  std::string json;
  ASSERT_TRUE(monitor.merged_snapshot(acct, json).ok());
  EXPECT_EQ(json, offline_report(ex2));
  EXPECT_EQ(acct.events_in, ex2.events.size());
  server.stop();
}

TEST_F(ServeTest, StatsWindowTracksTheTrailingDeltas) {
  Server server;  // default 60 s window: this whole test fits inside it
  // First sample establishes the pre-traffic baseline point.
  const ServerStats before = server.stats();
  EXPECT_EQ(before.window_events_in, 0u);
  EXPECT_EQ(before.window_ms, 60'000u);
  auto c = open_and_stream(server, *ex_, 512);
  Accounting acct;
  ASSERT_TRUE(c->close(acct).ok());
  server.wait_all();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.window_events_in, ex_->events.size());
  EXPECT_EQ(st.window_sessions, 1u);
  EXPECT_GT(st.window_events_per_sec, 0.0);
  // The Stats JSON carries the nested window object for wire clients.
  EXPECT_NE(st.to_json().find("\"window\":{\"ms\":60000,"), std::string::npos)
      << st.to_json();
  server.stop();
}

}  // namespace
}  // namespace dsprof::serve
