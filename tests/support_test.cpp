#include <gtest/gtest.h>

#include <set>

#include "support/bytestream.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace dsprof {
namespace {

TEST(SignExtend, Basics) {
  EXPECT_EQ(sign_extend(0x7FFF, 15), -1);
  EXPECT_EQ(sign_extend(0x3FFF, 15), 0x3FFF);
  EXPECT_EQ(sign_extend(0x4000, 15), -16384);
  EXPECT_EQ(sign_extend(0, 15), 0);
  EXPECT_EQ(sign_extend(0xFFFFF, 20), -1);
}

TEST(FitsSigned, Boundaries) {
  EXPECT_TRUE(fits_signed(16383, 15));
  EXPECT_FALSE(fits_signed(16384, 15));
  EXPECT_TRUE(fits_signed(-16384, 15));
  EXPECT_FALSE(fits_signed(-16385, 15));
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 16), 16u);
}

TEST(Log2Exact, PowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(512), 9u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(120));
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  Xoshiro256 r(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 r(2);
  std::set<i64> seen;
  for (int i = 0; i < 200; ++i) {
    const i64 v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(NextPrime, KnownValues) {
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(10), 11u);
  EXPECT_EQ(next_prime(900000), 900001u);
  EXPECT_EQ(next_prime(100), 101u);
  EXPECT_EQ(next_prime(1000000), 1000003u);
}

class NextPrimeSweep : public ::testing::TestWithParam<u64> {};

TEST_P(NextPrimeSweep, ReturnsPrimeAtLeastN) {
  const u64 n = GetParam();
  const u64 p = next_prime(n);
  EXPECT_GE(p, n);
  for (u64 f = 2; f * f <= p; ++f) EXPECT_NE(p % f, 0u) << p << " divisible by " << f;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NextPrimeSweep,
                         ::testing::Values(3, 17, 100, 501, 9999, 65536, 123457, 1u << 20));

TEST(ByteStream, RoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x123456789ABCDEFull);
  w.put_i64(-42);
  w.put_string("hello");
  w.put_f64(3.25);
  const std::vector<u8> data = {1, 2, 3};
  w.put_blob(data.data(), data.size());

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_blob(), data);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteStream, UnderrunThrows) {
  ByteWriter w;
  w.put_u8(1);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.get_u32(), Error);
}

TEST(ByteStream, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dsp_bytestream_test.bin";
  std::vector<u8> data = {9, 8, 7, 6};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"A", "Name"}, {Align::Right, Align::Left});
  t.add_row({"1", "x"});
  t.add_row({"100", "yyy"});
  const std::string out = t.render();
  EXPECT_NE(out.find("  1  x"), std::string::npos);
  EXPECT_NE(out.find("100  yyy"), std::string::npos);
}

TEST(TextTable, RejectsWrongCellCount) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt_percent(0.513), "51.3");
  EXPECT_EQ(fmt_count(1580927631ull), "1,580,927,631");
  EXPECT_EQ(fmt_fixed(1.2345, 3), "1.234");
  EXPECT_EQ(fmt_count(7), "7");
}

}  // namespace
}  // namespace dsprof
