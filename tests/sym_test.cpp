#include <gtest/gtest.h>

#include "sym/image.hpp"
#include "sym/symtab.hpp"

namespace dsprof::sym {
namespace {

TEST(TypeTable, BaseAliasPointerStruct) {
  TypeTable tt;
  const TypeId long_t = tt.add_base("long", 8);
  const TypeId cost_t = tt.add_alias("cost_t", long_t);
  const TypeId node = tt.declare_struct("node");
  const TypeId pnode = tt.add_pointer(node);
  tt.define_struct(node, 120,
                   {{"orientation", long_t, 56, 8}, {"child", pnode, 24, 8},
                    {"potential", cost_t, 88, 8}});
  EXPECT_EQ(tt.type_string(long_t), "long");
  EXPECT_EQ(tt.type_string(cost_t), "cost_t=long");
  EXPECT_EQ(tt.type_string(pnode), "pointer+structure:node");
  EXPECT_EQ(tt.aggregate_string(node), "{structure:node -}");
  EXPECT_EQ(tt.find_struct("node"), node);
  EXPECT_EQ(tt.find_struct("nope"), kInvalidType);
  EXPECT_EQ(tt.get(node).size, 120u);
}

TEST(TypeTable, MemberBoundsChecked) {
  TypeTable tt;
  const TypeId long_t = tt.add_base("long", 8);
  EXPECT_THROW(tt.add_struct("bad", 8, {{"x", long_t, 8, 8}}), Error);
}

TEST(TypeTable, SerializationRoundTrip) {
  TypeTable tt;
  const TypeId long_t = tt.add_base("long", 8);
  const TypeId node = tt.declare_struct("node");
  const TypeId pnode = tt.add_pointer(node);
  tt.define_struct(node, 16, {{"a", long_t, 0, 8}, {"next", pnode, 8, 8}});
  ByteWriter w;
  tt.serialize(w);
  ByteReader r(w.bytes());
  TypeTable back = TypeTable::deserialize(r);
  EXPECT_EQ(back.count(), tt.count());
  EXPECT_EQ(back.type_string(pnode), "pointer+structure:node");
  EXPECT_EQ(back.get(node).members.size(), 2u);
}

SymbolTable make_symtab() {
  SymbolTable st;
  const TypeId long_t = st.types().add_base("long", 8);
  const TypeId node = st.types().declare_struct("node");
  st.types().define_struct(node, 120, {{"orientation", long_t, 56, 8}});
  st.add_function({"f", 0x100, 0x140});
  st.add_function({"g", 0x140, 0x180});
  st.add_line(0x100, 10);
  st.add_line(0x120, 11);
  st.add_line(0x140, 20);
  MemRef ref;
  ref.kind = MemRef::Kind::StructMember;
  ref.aggregate = node;
  ref.member = 0;
  st.add_memref(0x110, ref);
  st.set_branch_targets({0x120, 0x150});
  st.add_source_line(10, "while (node) {");
  return st;
}

TEST(SymbolTable, FunctionLookup) {
  SymbolTable st = make_symtab();
  ASSERT_NE(st.find_function(0x100), nullptr);
  EXPECT_EQ(st.find_function(0x100)->name, "f");
  EXPECT_EQ(st.find_function(0x13C)->name, "f");
  EXPECT_EQ(st.find_function(0x140)->name, "g");
  EXPECT_EQ(st.find_function(0x180), nullptr);
  EXPECT_EQ(st.find_function(0x0), nullptr);
}

TEST(SymbolTable, LineLookupStaysWithinFunction) {
  SymbolTable st = make_symtab();
  EXPECT_EQ(st.line_for(0x100).value(), 10u);
  EXPECT_EQ(st.line_for(0x11C).value(), 10u);
  EXPECT_EQ(st.line_for(0x120).value(), 11u);
  EXPECT_EQ(st.line_for(0x144).value(), 20u);
  EXPECT_FALSE(st.line_for(0x80).has_value());
  EXPECT_FALSE(st.line_for(0x200).has_value());  // beyond g
}

TEST(SymbolTable, BranchTargetQuery) {
  SymbolTable st = make_symtab();
  // (lo, hi] semantics.
  EXPECT_EQ(st.branch_target_in(0x100, 0x130).value(), 0x120u);
  EXPECT_EQ(st.branch_target_in(0x120, 0x130), std::nullopt);
  EXPECT_EQ(st.branch_target_in(0x11C, 0x120).value(), 0x120u);
  EXPECT_EQ(st.branch_target_in(0x150, 0x200), std::nullopt);
}

TEST(SymbolTable, MemRefString) {
  SymbolTable st = make_symtab();
  EXPECT_EQ(st.memref_string(0x110), "{structure:node -}.{long orientation}");
  EXPECT_EQ(st.memref_string(0x114), "");
}

TEST(SymbolTable, SerializationRoundTrip) {
  SymbolTable st = make_symtab();
  ByteWriter w;
  st.serialize(w);
  ByteReader r(w.bytes());
  SymbolTable back = SymbolTable::deserialize(r);
  EXPECT_EQ(back.find_function(0x100)->name, "f");
  EXPECT_EQ(back.line_for(0x120).value(), 11u);
  EXPECT_EQ(back.memref_string(0x110), "{structure:node -}.{long orientation}");
  EXPECT_EQ(back.branch_target_in(0x100, 0x130).value(), 0x120u);
  ASSERT_NE(back.source_text(10), nullptr);
  EXPECT_EQ(*back.source_text(10), "while (node) {");
  EXPECT_EQ(back.hwcprof(), st.hwcprof());
}

TEST(Image, LoadIntoMemory) {
  Image img;
  img.text_words = {0x04000000, 0x04000000};  // two nops
  img.entry = img.text_base;
  img.data_init = {1, 2, 3, 4};
  img.data_size = 64;
  mem::Memory m;
  img.load_into(m);
  EXPECT_EQ(m.fetch_word(img.text_base), 0x04000000u);
  EXPECT_EQ(m.load(img.data_base, 4), 0x04030201u);
  EXPECT_EQ(m.classify(img.heap_base), mem::SegKind::Heap);
  EXPECT_EQ(m.classify(mem::kStackTop - 16), mem::SegKind::Stack);
}

TEST(Image, SerializationRoundTrip) {
  Image img;
  img.text_words = {0x04000000, 0xDEADBEEF};
  img.entry = img.text_base + 4;
  img.data_init = {9, 9};
  img.data_size = 16;
  img.symtab = make_symtab();
  ByteWriter w;
  img.serialize(w);
  ByteReader r(w.bytes());
  Image back = Image::deserialize(r);
  EXPECT_EQ(back.text_words, img.text_words);
  EXPECT_EQ(back.entry, img.entry);
  EXPECT_EQ(back.data_init, img.data_init);
  EXPECT_EQ(back.symtab.find_function(0x140)->name, "g");
}

TEST(Image, RejectsBadEntry) {
  Image img;
  img.text_words = {0x04000000};
  img.entry = img.text_base + 0x100;
  mem::Memory m;
  EXPECT_THROW(img.load_into(m), Error);
}

}  // namespace
}  // namespace dsprof::sym
